package distributed

import (
	"bytes"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/hashing"
)

var testCoins = Coins{
	Config: core.Config{Buckets: 61, SecondLevel: 16, FirstWise: 8},
	Seed:   99,
	Copies: 256,
}

func TestCoinsValidate(t *testing.T) {
	if err := testCoins.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCoins
	bad.Copies = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero copies accepted")
	}
	bad = testCoins
	bad.Config.SecondLevel = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSite("s", bad); err == nil {
		t.Error("NewSite accepted bad coins")
	}
	if _, err := NewCoordinator(bad); err == nil {
		t.Error("NewCoordinator accepted bad coins")
	}
}

func TestSiteBasics(t *testing.T) {
	site, err := NewSite("router1", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if site.Name() != "router1" || site.Coins() != testCoins {
		t.Error("site accessors broken")
	}
	if err := site.Insert("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := site.Insert("B", 2); err != nil {
		t.Fatal(err)
	}
	if err := site.Delete("A", 1); err != nil {
		t.Fatal(err)
	}
	got := site.Streams()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Streams = %v", got)
	}
	// Snapshot is a deep copy: later updates must not leak into it.
	snap := site.Snapshot()
	if err := site.Insert("A", 7); err != nil {
		t.Fatal(err)
	}
	fresh, _ := testCoins.NewFamily()
	if !snap["A"].Equal(fresh) {
		t.Error("snapshot of emptied stream A is not empty, or was mutated after the fact")
	}
}

// TestDistributedMergeMatchesCentralized is the stored-coins guarantee:
// a stream split across two sites merges at the coordinator into
// exactly the synopsis a single observer would have built.
func TestDistributedMergeMatchesCentralized(t *testing.T) {
	site1, _ := NewSite("s1", testCoins)
	site2, _ := NewSite("s2", testCoins)
	central, _ := testCoins.NewFamily()

	rng := hashing.NewRNG(5)
	for i := 0; i < 3000; i++ {
		e := rng.Uint64n(1 << 24)
		central.Insert(e)
		if i%2 == 0 {
			if err := site1.Insert("A", e); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := site2.Insert("A", e); err != nil {
				t.Fatal(err)
			}
		}
	}
	coord, _ := NewCoordinator(testCoins)
	if err := coord.PushSnapshot("s1", site1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := coord.PushSnapshot("s2", site2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	merged := coord.Family("A")
	if merged == nil || !merged.Equal(central) {
		t.Fatal("distributed merge differs from centralized synopsis")
	}
	pushes := coord.Pushes()
	if pushes["s1"] != 1 || pushes["s2"] != 1 {
		t.Errorf("push accounting: %v", pushes)
	}
	if coord.Family("missing") != nil {
		t.Error("unknown stream returned a synopsis")
	}
}

// TestFlushPeriodicCollection: successive flushes carry disjoint
// increments whose additive merge equals the full-stream synopsis —
// while successive Snapshots would double-count.
func TestFlushPeriodicCollection(t *testing.T) {
	site, _ := NewSite("s", testCoins)
	coord, _ := NewCoordinator(testCoins)
	central, _ := testCoins.NewFamily()

	rng := hashing.NewRNG(17)
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 500; i++ {
			e := rng.Uint64n(1 << 20)
			if err := site.Insert("A", e); err != nil {
				t.Fatal(err)
			}
			central.Insert(e)
		}
		if err := coord.PushSnapshot("s", site.Flush()); err != nil {
			t.Fatal(err)
		}
	}
	merged := coord.Family("A")
	if merged == nil || !merged.Equal(central) {
		t.Fatal("merged periodic flushes differ from the full-stream synopsis")
	}
	// After the final flush the site's local synopsis is empty.
	snap := site.Snapshot()
	empty, _ := testCoins.NewFamily()
	if !snap["A"].Equal(empty) {
		t.Error("Flush did not reset the site synopsis")
	}
}

func TestCoordinatorRejectsWrongCoins(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	wrong := testCoins
	wrong.Seed = 123
	fam, _ := wrong.NewFamily()
	if err := coord.Push("s", "A", fam); !errors.Is(err, core.ErrNotAligned) {
		t.Errorf("wrong-coins push: err = %v, want ErrNotAligned", err)
	}
	if err := coord.Push("s", "A", nil); err == nil {
		t.Error("nil synopsis accepted")
	}
	shorter := testCoins
	shorter.Copies = 8
	fam2, _ := shorter.NewFamily()
	if err := coord.Push("s", "A", fam2); !errors.Is(err, core.ErrNotAligned) {
		t.Errorf("wrong-copy-count push: err = %v, want ErrNotAligned", err)
	}
}

func TestCoordinatorEstimate(t *testing.T) {
	// Two streams observed at two sites each; query |A & B| centrally.
	coord, _ := NewCoordinator(testCoins)
	sites := []*Site{}
	for _, name := range []string{"s1", "s2"} {
		s, _ := NewSite(name, testCoins)
		sites = append(sites, s)
	}
	rng := hashing.NewRNG(6)
	const u, inter = 2048, 512
	for i := 0; i < u; i++ {
		e := rng.Uint64n(1 << 30)
		site := sites[i%2]
		switch {
		case i < inter:
			site.Insert("A", e)
			site.Insert("B", e)
		case i%2 == 0:
			site.Insert("A", e)
		default:
			site.Insert("B", e)
		}
	}
	for _, s := range sites {
		if err := coord.PushSnapshot(s.Name(), s.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	est, err := coord.Estimate("A & B", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Plumbing test, not an accuracy test (accuracy is covered in
	// internal/core): allow generous statistical slack at r = 256.
	if rel := math.Abs(est.Value-inter) / inter; rel > 0.6 {
		t.Errorf("distributed intersection estimate %.0f, want ≈ %d", est.Value, inter)
	}
	if _, err := coord.Estimate("A &", 0.2); err == nil {
		t.Error("malformed query accepted")
	}
	if _, err := coord.Estimate("A & MISSING", 0.2); err == nil {
		t.Error("query over unknown stream accepted")
	}
}

// startServer runs a coordinator server on a loopback listener.
func startServer(t *testing.T, coord *Coordinator) (addr string, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(coord)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	}
}

func TestNetworkEndToEnd(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	// Site side: summarize locally, push over TCP.
	site, _ := NewSite("edge", testCoins)
	rng := hashing.NewRNG(7)
	const u, inter = 1024, 256
	for i := 0; i < u; i++ {
		e := rng.Uint64n(1 << 28)
		switch {
		case i < inter:
			site.Insert("A", e)
			site.Insert("B", e)
		case i%2 == 0:
			site.Insert("A", e)
		default:
			site.Insert("B", e)
		}
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.PushSnapshot("edge", site.Snapshot()); err != nil {
		t.Fatal(err)
	}

	names, err := cli.Streams()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Streams over network = %v", names)
	}

	est, err := cli.Query("A & B", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-inter) / inter; rel > 0.5 {
		t.Errorf("network intersection estimate %.0f, want ≈ %d", est.Value, inter)
	}
	if est.Copies != testCoins.Copies {
		t.Errorf("estimate diagnostics lost in transit: %+v", est)
	}

	// Remote errors must round-trip as errors, not garbage.
	if _, err := cli.Query("A & NOPE", 0.25); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("remote error lost: %v", err)
	}
	wrong := testCoins
	wrong.Seed = 5
	badFam, _ := wrong.NewFamily()
	if err := cli.Push("edge", "A", badFam); err == nil {
		t.Error("wrong-coins push accepted over network")
	}
}

func TestNetworkConcurrentSites(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	const sites = 4
	var wg sync.WaitGroup
	errs := make(chan error, sites)
	for si := 0; si < sites; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			site, _ := NewSite("site", testCoins)
			rng := hashing.NewRNG(uint64(si) + 100)
			for i := 0; i < 500; i++ {
				site.Insert("A", rng.Uint64n(1<<20))
			}
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			errs <- cli.PushSnapshot("site", site.Snapshot())
		}(si)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := coord.Pushes()["site"]; got != sites {
		t.Errorf("coordinator merged %d pushes, want %d", got, sites)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query("A", 0.3); err != nil {
		t.Fatalf("distinct-count query failed: %v", err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown frame type must produce an error reply, not a hangup.
	if err := writeFrame(conn, 0x55, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Errorf("reply type %#x, want msgError", typ)
	}
	// Undecodable push payload: error reply.
	if err := writeFrame(conn, msgPush, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, _, err = readFrame(conn)
	if err != nil || typ != msgError {
		t.Errorf("garbled push: type %#x err %v", typ, err)
	}
}

func TestFrameLimits(t *testing.T) {
	var sink deadWriter
	if err := writeFrame(&sink, msgPush, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized frame written")
	}
	// A header advertising an oversized payload must be rejected before
	// any allocation.
	var hdr [5]byte
	hdr[0] = msgPush
	hdr[1], hdr[2], hdr[3], hdr[4] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversized frame header accepted")
	}
}

func TestServerDoubleCloseAndReuse(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	srv := NewServer(coord)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	// Serving a closed server fails fast.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Error("Serve after Close succeeded")
	}
}

type deadWriter struct{}

func (deadWriter) Write(p []byte) (int, error) { return len(p), nil }
