// Package distributed implements the paper's distributed
// stream-processing model (Fig. 1 and the Gibbons–Tirthapura
// "distributed-streams model with stored coins"): each stream — or part
// of a stream — is observed and summarized by its own site, and the
// resulting synopses are collected at a central coordinator where set
// expressions over the entire collection of streams are estimated.
//
// The stored coins are a (configuration, master seed, copy count)
// triple shared by all parties: every site derives bit-identical hash
// functions from it, so sketches of different streams compare
// bucket-by-bucket at the coordinator, and sketches of *the same*
// stream observed at different sites merge by counter addition into
// exactly the sketch a single observer would have built.
package distributed

import (
	"fmt"
	"sort"
	"sync"

	"setsketch/internal/core"
)

// Coins is the shared randomness of the distributed model. All sites
// and the coordinator must agree on it; mismatched coins surface as
// core.ErrNotAligned at merge time.
type Coins struct {
	Config core.Config
	Seed   uint64
	Copies int
}

// NewFamily mints an empty sketch family from the coins.
func (c Coins) NewFamily() (*core.Family, error) {
	return core.NewFamily(c.Config, c.Seed, c.Copies)
}

// Validate checks the coins' parameters.
func (c Coins) Validate() error {
	if c.Copies < 1 {
		return fmt.Errorf("distributed: coins specify %d copies", c.Copies)
	}
	return c.Config.Validate()
}

// Site summarizes the update streams it observes into 2-level hash
// sketch families built from shared coins. A Site is safe for
// concurrent use.
type Site struct {
	name  string
	coins Coins

	mu   sync.Mutex
	fams map[string]*core.Family
}

// NewSite creates a site with the given name (used for diagnostics
// only) and shared coins.
func NewSite(name string, coins Coins) (*Site, error) {
	if err := coins.Validate(); err != nil {
		return nil, err
	}
	return &Site{name: name, coins: coins, fams: make(map[string]*core.Family)}, nil
}

// Name returns the site's name.
func (s *Site) Name() string { return s.name }

// Coins returns the site's shared coins.
func (s *Site) Coins() Coins { return s.coins }

// Update applies the stream update ⟨stream, e, ±v⟩, creating the
// stream's synopsis on first touch.
func (s *Site) Update(stream string, e uint64, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.fams[stream]
	if !ok {
		var err error
		if f, err = s.coins.NewFamily(); err != nil {
			return err
		}
		s.fams[stream] = f
	}
	f.Update(e, v)
	return nil
}

// Insert is Update(stream, e, +1).
func (s *Site) Insert(stream string, e uint64) error { return s.Update(stream, e, 1) }

// Delete is Update(stream, e, −1).
func (s *Site) Delete(stream string, e uint64) error { return s.Update(stream, e, -1) }

// Streams returns the names of the streams this site has observed,
// sorted.
func (s *Site) Streams() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.fams))
	for name := range s.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns deep copies of the site's synopses, suitable for
// shipping to a coordinator while updates continue. Snapshot is for
// ONE-SHOT collection: pushing two successive snapshots of the same
// site double-counts everything observed before the first, because the
// coordinator merges additively. For periodic collection use Flush.
func (s *Site) Snapshot() map[string]*core.Family {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*core.Family, len(s.fams))
	for name, f := range s.fams {
		out[name] = f.Clone()
	}
	return out
}

// Flush atomically snapshots the site's synopses and resets them to
// empty, so each flush carries exactly the updates observed since the
// previous one. Because sketches are linear, the coordinator's
// additive merge of successive flushes reconstructs exactly the
// synopsis of the full local stream — this is the correct primitive
// for periodic shipping.
func (s *Site) Flush() map[string]*core.Family {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*core.Family, len(s.fams))
	for name, f := range s.fams {
		out[name] = f.Clone()
		f.Reset()
	}
	return out
}
