package distributed

// Lock-striped coordinator state. The paper's stored-coins synopses
// are linear — per-stream state is independently mergeable, and every
// counter is a sum of per-update contributions — so nothing couples
// two different streams inside one update batch except the data
// structure holding them. This file exploits that: stream names (and
// site-accounting keys) hash onto a power-of-two array of shards, each
// with its own RWMutex, family map, and version stamp, so concurrent
// sessions writing disjoint streams never touch the same lock word.
//
// Consistency is kept by three rules, machine-checked by sketchvet's
// guardedby analyzer (and documented in DESIGN.md "Coordinator
// concurrency"):
//
//  1. Shard locks are always acquired in ascending index order, and a
//     batch holds every shard it touches for its whole append+apply
//     window — so estimates, which RLock the (ascending) shard set of
//     their referenced streams, never observe a half-applied batch.
//  2. The fence RWMutex brackets whole-state operations: every batch
//     holds it shared for its lifetime, while snapshots, catalog
//     changes, and recovery installs take it exclusively to get a
//     consistent cross-shard cut (including the WAL sequence number).
//  3. The per-shard version stamps form the cross-shard version fence:
//     every applied mutation bumps its shard's stamp under the write
//     lock, so two equal StateVersion readings bracket a quiescent
//     region — the differential tests use this to prove bit-identical
//     convergence, and watchers use the per-family stamps to skip
//     no-op rounds.

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/ingest"
)

// maxShards bounds the stripe count; beyond this, lock-array sweeps in
// snapshot/recovery paths cost more than the contention they save.
const maxShards = 256

// defaultCoordDigestCache is the default -digest-cache capacity for
// the coordinator's raw-update path (mirrors the ingest engine's
// default).
const defaultCoordDigestCache = 8192

// coordShard is one lock stripe of the coordinator's merged state.
// Each shard owns the streams (and site-accounting keys) that hash to
// it; all fields are guarded by the shard's own mu.
type coordShard struct {
	mu sync.RWMutex
	// fams holds the merged per-stream synopses owned by this stripe.
	// guarded by: mu
	// wal: state
	fams map[string]*core.Family
	// sites counts pushes accepted per site, for diagnostics; site
	// names hash into the same stripe space as stream names.
	// guarded by: mu
	// wal: state
	sites map[string]int
	// version counts mutations applied to this stripe — one lane of
	// the cross-shard version fence (see StateVersion).
	// guarded by: mu
	version uint64

	// Pad each shard out to its own cache-line neighborhood: the
	// shards live in one contiguous slice, and without padding one
	// stripe's lock word and version counter would false-share with
	// its neighbors', serializing exactly the sessions the stripes
	// exist to decouple.
	_ [80]byte
}

// defaultShardCount picks the stripe count when -shards is not given:
// the next power of two covering GOMAXPROCS, clamped to [1, 64] — one
// stripe per runnable CPU is where the contention win flattens out.
func defaultShardCount() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	if n < 1 {
		n = 1
	}
	return n
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex routes a stream or site name to its owning stripe with
// FNV-1a — stable across processes, so replaying one host's WAL into a
// coordinator with any other shard count lands every stream in a
// well-defined (if different) stripe and rebuilds identical synopses.
func (c *Coordinator) shardIndex(name string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int(h & c.shardMask)
}

// shardFor returns the stripe owning a stream or site name.
func (c *Coordinator) shardFor(name string) *coordShard {
	return &c.shards[c.shardIndex(name)]
}

// initShards (re)builds the stripe array and the empty copy-on-write
// read map. Only called while the coordinator holds no state; the
// per-stripe locks are uncontended but taken anyway to satisfy the
// guardedby contract on fams/sites.
func (c *Coordinator) initShards(n int) {
	c.shards = make([]coordShard, n)
	c.shardMask = uint64(n - 1)
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].fams = make(map[string]*core.Family)
		c.shards[i].sites = make(map[string]int)
		c.shards[i].mu.Unlock()
	}
	empty := make(map[string]*core.Family)
	c.read.Store(&empty)
}

// SetShards repartitions the coordinator into n lock-striped shards,
// rounded up to a power of two and clamped to [1, 256]; n <= 0 selects
// the GOMAXPROCS-derived default. Call it before Recover and before
// the coordinator serves traffic, like SetObservability — resharding
// does not migrate state, so it refuses to run once any stream, update
// credit, or watcher exists. n = 1 keeps the single-stripe layout,
// bit-identical in behavior to the pre-sharding coordinator.
//
//sketchvet:wal-exempt pre-traffic setup: repartitions empty shards, mutates no recovered state
func (c *Coordinator) SetShards(n int) error {
	if n <= 0 {
		n = defaultShardCount()
	}
	if n > maxShards {
		n = maxShards
	}
	n = ceilPow2(n)
	if c.updates.Load() != 0 || len(*c.read.Load()) != 0 || c.Watchers() != 0 {
		return fmt.Errorf("distributed: SetShards must run before the coordinator holds state")
	}
	c.cmu.Lock()
	clear(c.compileCache) // cached lock sets are per-layout
	c.cmu.Unlock()
	c.initShards(n)
	return nil
}

// Shards reports the configured stripe count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// SetDigestCache arms the coordinator-side digest cache on the raw
// update path with at least n entries (rounded up to a power of two);
// n == 0 selects the default 8192, n < 0 disables the cache. On the
// skewed central workloads the paper evaluates, the heavy hitters
// dominating the update volume then replay cached digests instead of
// re-hashing every batch (coord_digest_cache_hits_total). Call it
// after SetObservability — the cache binds the coord_digest_cache_*
// counters at creation — and before the coordinator serves traffic. A
// no-op for digest-unpackable coin shapes.
//
//sketchvet:wal-exempt pre-traffic setup: wires a derived cache, mutates no recovered state
func (c *Coordinator) SetDigestCache(n int) {
	if n == 0 {
		n = defaultCoordDigestCache
	}
	if n < 0 || !c.coins.Config.DigestPackable() {
		c.dcache = nil
		return
	}
	c.dcache = ingest.NewDigestCache(n, c.coins.Seed,
		c.met.digestCacheHits, c.met.digestCacheMisses, c.met.digestCacheEvictions)
}

// lockShards write-locks the given stripe indexes, which must be
// sorted ascending and duplicate-free — the global shard lock order
// that keeps multi-shard batches deadlock-free against each other and
// against the estimate path's shared acquisitions.
func (c *Coordinator) lockShards(order []int) {
	for _, i := range order {
		c.shards[i].mu.Lock()
	}
}

func (c *Coordinator) unlockShards(order []int) {
	for _, i := range order {
		c.shards[i].mu.Unlock()
	}
}

// lockAllShards write-locks every stripe in ascending order. Recovery
// replay and state installs use it; the live batch path locks only the
// stripes it touches.
func (c *Coordinator) lockAllShards() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
}

func (c *Coordinator) unlockAllShards() {
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// shardLockSet maps stream names to the ascending, deduplicated list
// of stripe indexes owning them — the estimate path's lock set,
// computed once per compiled expression.
func (c *Coordinator) shardLockSet(streams []string) []int {
	seen := make([]bool, len(c.shards))
	out := make([]int, 0, len(streams))
	for _, s := range streams {
		si := c.shardIndex(s)
		if !seen[si] {
			seen[si] = true
			out = append(out, si)
		}
	}
	slices.Sort(out)
	return out
}

// publishStream adds one newly created stream family to the
// copy-on-write read map. The estimate path loads the map pointer with
// no lock at all: published maps are immutable, and a reader holding
// the stream's shard RLock is ordered after the writer's unlock, so it
// always loads a map containing the stream.
// caller holds: mu
func (c *Coordinator) publishStream(stream string, f *core.Family) {
	c.rmu.Lock()
	old := *c.read.Load()
	m := make(map[string]*core.Family, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[stream] = f
	c.read.Store(&m)
	c.rmu.Unlock()
}

// famLocked returns the merged synopsis for a stream, creating an
// empty one (and publishing it to the read map) on first reference.
// The stream must route to sh.
// caller holds: mu
func (c *Coordinator) famLocked(sh *coordShard, stream string) *core.Family {
	f, ok := sh.fams[stream]
	if !ok {
		f, _ = c.coins.NewFamily() // coins validated at construction
		sh.fams[stream] = f
		c.publishStream(stream, f)
	}
	return f
}

// StateVersion sums every stripe's version stamp — the cross-shard
// version fence. A mutation bumps its stripe's stamp under the write
// lock before releasing it, so two equal readings bracket a region in
// which no batch committed; the differential tests use this to prove
// sharded and unsharded coordinators converged to identical state.
func (c *Coordinator) StateVersion() uint64 {
	var v uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		v += sh.version
		sh.mu.RUnlock()
	}
	return v
}
