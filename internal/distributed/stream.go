package distributed

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// Streaming sessions extend the one-shot push protocol so a site can
// stay connected to the coordinator indefinitely:
//
//	hello       → ok            open the session (coins are verified once)
//	updateBatch → ack           raw ⟨stream, elem, ±v⟩ updates, sketched centrally
//	delta       → ack           locally sketched synopsis delta, merged by linearity
//	heartbeat   → ack           keep-alive / liveness probe
//	watch       → ok, result*   standing continuous queries; the server then
//	                            pushes a result frame per expression per round
//
// Every session frame carries a client sequence number echoed in the
// ack, so a site can pipeline-and-verify. Deltas additionally report
// how many local updates they summarize, keeping the coordinator's
// update-count watch triggers accurate in delta mode.

// defaultWatchWriteTimeout bounds how long a watch-result write may
// block on a stalled client before the session is torn down.
const defaultWatchWriteTimeout = 10 * time.Second

type helloMsg struct {
	Site   string
	Config core.Config
	Seed   uint64
	Copies int
}

type wireUpdate struct {
	Stream string
	Elem   uint64
	Delta  int64
}

type updateBatchMsg struct {
	Seq     uint64
	Updates []wireUpdate
}

type deltaMsg struct {
	Seq      uint64
	Stream   string
	Count    uint64 // local updates this delta summarizes
	Synopsis []byte
}

type heartbeatMsg struct{ Seq uint64 }

type ackMsg struct {
	Seq      uint64
	Accepted uint64 // updates credited to this session so far
}

type watchMsg struct {
	Exprs          []string
	Views          []string
	Eps            float64
	EveryUpdates   uint64
	IntervalMillis int64
}

type watchResultMsg struct {
	Expr    string
	View    string
	Group   string
	Epoch   uint64
	Updates uint64
	Delta   float64
	Err     string
	Est     estimateMsg
}

// connState is the per-connection state of the server: a write mutex
// shared by the request/reply path and the watch pusher, plus the
// streaming-session identity once a hello has been accepted.
type connState struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex

	site     string
	open     bool
	accepted uint64

	watcher *Watcher
	watchWG sync.WaitGroup
}

func (st *connState) write(typ byte, payload []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	err := writeFrame(st.conn, typ, payload)
	if err == nil {
		st.srv.met.out(typ).Inc()
	}
	return err
}

// writeDeadline writes one frame under a deadline, so a stalled peer
// cannot pin the pusher goroutine (and the frame mutex) forever.
func (st *connState) writeDeadline(typ byte, payload []byte, d time.Duration) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if d > 0 {
		st.conn.SetWriteDeadline(time.Now().Add(d))
		defer st.conn.SetWriteDeadline(time.Time{})
	}
	err := writeFrame(st.conn, typ, payload)
	if err == nil {
		st.srv.met.out(typ).Inc()
	}
	return err
}

func (st *connState) cleanup() {
	if st.watcher != nil {
		st.watcher.Close()
	}
	st.conn.Close()
	st.watchWG.Wait()
}

func failReply(err error) ([]byte, byte) {
	out, encErr := encodeGob(errorMsg{Message: err.Error()})
	if encErr != nil {
		return nil, msgError
	}
	return out, msgError
}

func (st *connState) ackReply(seq uint64) ([]byte, byte) {
	out, err := encodeGob(ackMsg{Seq: seq, Accepted: st.accepted})
	if err != nil {
		return failReply(err)
	}
	return out, msgAck
}

// handleHello opens a streaming session after verifying the stored
// coins once, so every subsequent delta merges without re-checking and
// raw updates are sketched with hash functions the site agrees on.
func (s *Server) handleHello(st *connState, payload []byte) ([]byte, byte) {
	var m helloMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	want := s.coord.Coins()
	if m.Config != want.Config || m.Seed != want.Seed || m.Copies != want.Copies {
		return failReply(fmt.Errorf("stored-coins mismatch: session %+v vs coordinator %+v",
			Coins{Config: m.Config, Seed: m.Seed, Copies: m.Copies}, want))
	}
	if m.Site == "" {
		return failReply(fmt.Errorf("streaming session needs a site name"))
	}
	st.site = m.Site
	st.open = true
	s.mu.Lock()
	seen := s.seenSites[m.Site]
	s.seenSites[m.Site]++
	s.mu.Unlock()
	s.met.sessionsOpened.Inc()
	if seen > 0 {
		s.met.sessionReopens.Inc()
		s.log.Info("session reopened", "site", m.Site, "prior_sessions", seen)
	} else {
		s.log.Info("session opened", "site", m.Site)
	}
	return nil, msgOK
}

func (st *connState) requireSession() error {
	if !st.open {
		return fmt.Errorf("no streaming session: send hello first")
	}
	return nil
}

func (s *Server) handleUpdateBatch(st *connState, payload []byte) ([]byte, byte) {
	if err := st.requireSession(); err != nil {
		return failReply(err)
	}
	var m updateBatchMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	ups := make([]datagen.Update, len(m.Updates))
	for i, u := range m.Updates {
		ups[i] = datagen.Update{Stream: u.Stream, Elem: u.Elem, Delta: u.Delta}
	}
	if err := s.coord.ApplyUpdates(st.site, ups); err != nil {
		return failReply(err)
	}
	st.accepted += uint64(len(ups))
	return st.ackReply(m.Seq)
}

func (s *Server) handleDelta(st *connState, payload []byte) ([]byte, byte) {
	if err := st.requireSession(); err != nil {
		return failReply(err)
	}
	var m deltaMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	fam, err := core.ReadFamily(bytes.NewReader(m.Synopsis))
	if err != nil {
		return failReply(err)
	}
	if err := s.coord.ApplyDelta(st.site, m.Stream, fam, m.Count); err != nil {
		return failReply(err)
	}
	st.accepted += m.Count
	return st.ackReply(m.Seq)
}

func (s *Server) handleHeartbeat(st *connState, payload []byte) ([]byte, byte) {
	var m heartbeatMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	s.met.heartbeats.Inc()
	return st.ackReply(m.Seq)
}

// handleWatch registers the continuous queries and dedicates this
// connection to streaming their results. It writes the ok reply itself
// before the pusher starts, so the client never sees a result frame
// ahead of the registration reply.
func (s *Server) handleWatch(st *connState, payload []byte) ([]byte, byte) {
	if st.watcher != nil {
		return failReply(fmt.Errorf("watch already registered on this connection"))
	}
	var m watchMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	w, err := s.coord.Watch(WatchSpec{
		Exprs:        m.Exprs,
		Views:        m.Views,
		Eps:          m.Eps,
		EveryUpdates: m.EveryUpdates,
		Interval:     time.Duration(m.IntervalMillis) * time.Millisecond,
	})
	if err != nil {
		return failReply(err)
	}
	if err := st.write(msgOK, nil); err != nil {
		w.Close()
		return nil, 0
	}
	st.watcher = w
	st.watchWG.Add(1)
	s.watchWG.Add(1)
	go s.pushWatchResults(st, w)
	return nil, 0
}

// pushWatchResults forwards watcher results to the connection until
// the watcher closes (slow consumer, coordinator shutdown) or the
// write path fails.
func (s *Server) pushWatchResults(st *connState, w *Watcher) {
	defer st.watchWG.Done()
	defer s.watchWG.Done()
	timeout := s.WatchWriteTimeout
	if timeout <= 0 {
		timeout = defaultWatchWriteTimeout
	}
	for res := range w.C {
		out, err := encodeGob(watchResultMsg{
			Expr:    res.Expr,
			View:    res.View,
			Group:   res.Group,
			Epoch:   res.Epoch,
			Updates: res.Updates,
			Delta:   res.Delta,
			Err:     res.Err,
			Est: estimateMsg{
				Value: res.Est.Value, Level: res.Est.Level, Copies: res.Est.Copies,
				Valid: res.Est.Valid, Witnesses: res.Est.Witnesses, Union: res.Est.Union,
				StdError: res.Est.StdError,
			},
		})
		if err != nil {
			continue
		}
		if err := st.writeDeadline(msgWatchResult, out, timeout); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.watchTimeouts.Inc()
				s.log.Warn("watch client stalled: result write timed out",
					"remote", st.conn.RemoteAddr().String(), "timeout", timeout.String())
			}
			w.Close()
			return
		}
	}
	// The hub closed the channel (e.g. slow consumer): tell the client
	// why before the connection goes quiet.
	if reason := w.Reason(); reason != "closed" {
		s.log.Warn("watch terminated", "remote", st.conn.RemoteAddr().String(), "reason", reason)
		if out, err := encodeGob(errorMsg{Message: "watch terminated: " + reason}); err == nil {
			st.writeDeadline(msgError, out, timeout)
		}
	}
}

// StreamSession is the client side of a streaming session: after the
// hello handshake a site stays connected and interleaves raw update
// batches, locally sketched deltas, and heartbeats for as long as it
// likes. A session shares its Client's serialization; use one session
// per Client.
type StreamSession struct {
	c    *Client
	site string

	mu  sync.Mutex
	seq uint64
}

// OpenStream performs the hello handshake and returns the session.
// The coins must match the coordinator's exactly.
func (c *Client) OpenStream(site string, coins Coins) (*StreamSession, error) {
	payload, err := encodeGob(helloMsg{Site: site, Config: coins.Config, Seed: coins.Seed, Copies: coins.Copies})
	if err != nil {
		return nil, err
	}
	typ, reply, err := c.roundTrip(msgHello, payload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgOK:
		return &StreamSession{c: c, site: site}, nil
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to hello", typ)
	}
}

// Site returns the session's site name.
func (s *StreamSession) Site() string { return s.site }

func (s *StreamSession) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// sessionRoundTrip sends one sequenced session frame and verifies the
// ack echoes the sequence number. It returns the coordinator's total
// accepted-update count for this session.
func (s *StreamSession) sessionRoundTrip(typ byte, payload []byte, seq uint64) (uint64, error) {
	replyTyp, reply, err := s.c.roundTrip(typ, payload)
	if err != nil {
		return 0, err
	}
	switch replyTyp {
	case msgAck:
		var m ackMsg
		if err := decodeGob(reply, &m); err != nil {
			return 0, err
		}
		if m.Seq != seq {
			return 0, fmt.Errorf("distributed: ack for frame %d, want %d", m.Seq, seq)
		}
		return m.Accepted, nil
	case msgError:
		return 0, remoteError(reply)
	default:
		return 0, fmt.Errorf("distributed: unexpected reply type %#x in session", replyTyp)
	}
}

// SendUpdates ships one batch of raw updates for the coordinator to
// sketch centrally. It returns the session's accepted-update total.
func (s *StreamSession) SendUpdates(ups []datagen.Update) (uint64, error) {
	wire := make([]wireUpdate, len(ups))
	for i, u := range ups {
		wire[i] = wireUpdate{Stream: u.Stream, Elem: u.Elem, Delta: u.Delta}
	}
	seq := s.next()
	payload, err := encodeGob(updateBatchMsg{Seq: seq, Updates: wire})
	if err != nil {
		return 0, err
	}
	return s.sessionRoundTrip(msgUpdateBatch, payload, seq)
}

// SendDelta ships one locally sketched synopsis delta, merged by
// linearity at the coordinator. count reports how many local updates
// the delta summarizes (for the coordinator's watch triggers).
func (s *StreamSession) SendDelta(stream string, fam *core.Family, count uint64) (uint64, error) {
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		return 0, err
	}
	seq := s.next()
	payload, err := encodeGob(deltaMsg{Seq: seq, Stream: stream, Count: count, Synopsis: buf.Bytes()})
	if err != nil {
		return 0, err
	}
	return s.sessionRoundTrip(msgDelta, payload, seq)
}

// SendFlush ships every stream of a flush (e.g. ingest.Engine.Flush),
// in sorted order for reproducibility, crediting totalCount updates to
// the first delta.
func (s *StreamSession) SendFlush(deltas map[string]*core.Family, totalCount uint64) error {
	names := make([]string, 0, len(deltas))
	for name := range deltas {
		names = append(names, name)
	}
	sort.Strings(names)
	count := totalCount
	for _, name := range names {
		if _, err := s.SendDelta(name, deltas[name], count); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
		count = 0
	}
	return nil
}

// Heartbeat probes session liveness and returns the accepted-update
// total.
func (s *StreamSession) Heartbeat() (uint64, error) {
	seq := s.next()
	payload, err := encodeGob(heartbeatMsg{Seq: seq})
	if err != nil {
		return 0, err
	}
	return s.sessionRoundTrip(msgHeartbeat, payload, seq)
}

// WatchEvent is one continuous-query result delivered to a watching
// client. Exactly one of Expr and View is set: Expr for a standing
// set-expression result, View (plus Group for grouped views) for a
// continuous-view result.
type WatchEvent struct {
	Expr    string
	View    string // continuous view this result belongs to, if any
	Group   string // group key within the view ("" for ungrouped views)
	Epoch   uint64
	Updates uint64
	Est     core.Estimate
	Delta   float64 // ISTREAM views only: change in Est.Value since the last emit
	Err     string  // per-round evaluation error, or terminal session error
	// Terminal marks the last event of the stream: the server ended the
	// watch (Err carries its reason — e.g. a slow-consumer drop or
	// coordinator shutdown) or the connection failed. No further events
	// follow; the channel closes next.
	Terminal bool
}

// WatchRequest describes a watch registration: standing set
// expressions and/or continuous views (registered earlier with
// CreateView) whose results stream back on this connection.
type WatchRequest struct {
	Exprs        []string      // set expressions evaluated each round
	Views        []string      // continuous views evaluated each round
	Eps          float64       // target standard error (0 = coordinator default)
	EveryUpdates uint64        // fire a round after this many accepted updates
	Interval     time.Duration // also fire on this wall-clock period
}

// Watch registers standing continuous queries and dedicates this
// client's connection to the result stream: the returned channel
// yields one event per expression per evaluation round until the
// server drops the watch or the connection closes. every triggers a
// round after that many accepted updates; interval adds wall-clock
// rounds; either may be zero. To watch continuous views, use
// Subscribe.
//
// Results are delivered through bounded queues at both ends — the
// coordinator's per-watcher queue and this channel — and the
// coordinator never blocks on a watcher: a client that stops reading
// loses rounds, and past the coordinator's MaxDrops consecutive
// losses the watch is dropped server-side. The stream then ends with
// one final event carrying Terminal=true and the server's reason in
// Err ("watch terminated: slow consumer: ..."), after which the
// channel closes. A connection failure likewise yields a terminal
// event (including after a local Close, where the reason is the local
// read error).
func (c *Client) Watch(exprs []string, eps float64, every uint64, interval time.Duration) (<-chan WatchEvent, error) {
	return c.Subscribe(WatchRequest{Exprs: exprs, Eps: eps, EveryUpdates: every, Interval: interval})
}

// Subscribe is the general form of Watch: it registers any mix of set
// expressions and continuous views. Grouped views yield one event per
// live group per round; ISTREAM views emit only groups whose estimate
// changed, with the change in the event's Delta field.
func (c *Client) Subscribe(req WatchRequest) (<-chan WatchEvent, error) {
	payload, err := encodeGob(watchMsg{
		Exprs:          req.Exprs,
		Views:          req.Views,
		Eps:            req.Eps,
		EveryUpdates:   req.EveryUpdates,
		IntervalMillis: int64(req.Interval / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	typ, reply, err := c.roundTrip(msgWatch, payload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgOK:
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to watch", typ)
	}
	c.mu.Lock()
	c.watching = true
	c.mu.Unlock()
	ch := make(chan WatchEvent, 32)
	go func() {
		defer close(ch)
		// terminal delivers the final event without ever blocking: an
		// abandoned consumer must not leak this goroutine.
		terminal := func(reason string) {
			select {
			case ch <- WatchEvent{Err: reason, Terminal: true}:
			default:
			}
		}
		for {
			typ, payload, err := readFrame(c.conn)
			if err != nil {
				terminal("watch stream closed: " + err.Error())
				return
			}
			switch typ {
			case msgWatchResult:
				var m watchResultMsg
				if err := decodeGob(payload, &m); err != nil {
					terminal("undecodable watch result: " + err.Error())
					return
				}
				ch <- WatchEvent{
					Expr:    m.Expr,
					View:    m.View,
					Group:   m.Group,
					Epoch:   m.Epoch,
					Updates: m.Updates,
					Delta:   m.Delta,
					Err:     m.Err,
					Est: core.Estimate{
						Value: m.Est.Value, Level: m.Est.Level, Copies: m.Est.Copies,
						Valid: m.Est.Valid, Witnesses: m.Est.Witnesses, Union: m.Est.Union,
						StdError: m.Est.StdError,
					},
				}
			case msgError:
				var m errorMsg
				if err := decodeGob(payload, &m); err != nil {
					terminal("undecodable watch error frame: " + err.Error())
				} else {
					terminal(m.Message)
				}
				return
			default:
				terminal(fmt.Sprintf("unexpected frame type %#x in watch stream", typ))
				return
			}
		}
	}()
	return ch, nil
}
