package distributed

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
)

// Streaming sessions extend the one-shot push protocol so a site can
// stay connected to the coordinator indefinitely:
//
//	hello       → ok            open the session (coins are verified once)
//	updateBatch → ack           raw ⟨stream, elem, ±v⟩ updates, sketched centrally
//	delta       → ack           locally sketched synopsis delta, merged by linearity
//	heartbeat   → ack           keep-alive / liveness probe
//	watch       → ok, result*   standing continuous queries; the server then
//	                            pushes a result frame per expression per round
//
// Every session frame carries a client sequence number echoed in the
// ack, so a site can pipeline-and-verify. Deltas additionally report
// how many local updates they summarize, keeping the coordinator's
// update-count watch triggers accurate in delta mode.
//
// Session frames are encoded with the hand-rolled binary codec
// (codec.go) rather than gob, and both ends run them through reusable
// per-connection scratch buffers: a steady-state session neither
// allocates to encode/decode an update batch, delta envelope, heartbeat
// or ack, nor to read the frames off the wire.

// defaultWatchWriteTimeout bounds how long a watch-result write may
// block on a stalled client before the session is torn down.
const defaultWatchWriteTimeout = 10 * time.Second

type helloMsg struct {
	Site   string
	Config core.Config
	Seed   uint64
	Copies int
}

type watchMsg struct {
	Exprs          []string
	Views          []string
	Eps            float64
	EveryUpdates   uint64
	IntervalMillis int64
}

type watchResultMsg struct {
	Expr    string
	View    string
	Group   string
	Epoch   uint64
	Updates uint64
	Delta   float64
	Err     string
	Est     estimateMsg
}

// connState is the per-connection state of the server: a write mutex
// shared by the request/reply path and the watch pusher, the
// streaming-session identity once a hello has been accepted, and the
// scratch buffers that make the session hot path allocation-free. fr,
// abuf, ups, and names belong to the handler goroutine; wframe is
// guarded by wmu.
type connState struct {
	srv  *Server
	conn net.Conn

	wmu    sync.Mutex
	wframe []byte // whole-frame build buffer, one conn.Write per frame

	fr    frameReader      // inbound frame payload buffer
	abuf  []byte           // ack payload scratch
	ups   []datagen.Update // update-batch decode scratch
	names interner         // stream names seen on this connection

	site     string
	open     bool
	accepted uint64
	// app is this session's private apply path (digest scratch +
	// coalesce buffers), created at hello so concurrent sessions never
	// serialize on shared scratch.
	app *Applier

	watcher *Watcher
	watchWG sync.WaitGroup
}

func (st *connState) write(typ byte, payload []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	return st.writeLocked(typ, payload)
}

// writeLocked frames the payload into the connection's write buffer and
// ships it with a single conn.Write.
// caller holds: wmu
func (st *connState) writeLocked(typ byte, payload []byte) error {
	frame, err := appendFrame(st.wframe[:0], typ, payload)
	st.wframe = frame[:0]
	if err != nil {
		return err
	}
	if _, err := st.conn.Write(frame); err != nil {
		return err
	}
	st.srv.met.out(typ).Inc()
	return nil
}

// writeDeadline writes one frame under a deadline, so a stalled peer
// cannot pin the pusher goroutine (and the frame mutex) forever.
func (st *connState) writeDeadline(typ byte, payload []byte, d time.Duration) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if d > 0 {
		st.conn.SetWriteDeadline(time.Now().Add(d))
		defer st.conn.SetWriteDeadline(time.Time{})
	}
	return st.writeLocked(typ, payload)
}

func (st *connState) cleanup() {
	if st.watcher != nil {
		st.watcher.Close()
	}
	st.conn.Close()
	st.watchWG.Wait()
}

func failReply(err error) ([]byte, byte) {
	out, encErr := encodeGob(errorMsg{Message: err.Error()})
	if encErr != nil {
		return nil, msgError
	}
	return out, msgError
}

func (st *connState) ackReply(seq uint64) ([]byte, byte) {
	st.abuf = appendAck(st.abuf[:0], seq, st.accepted)
	return st.abuf, msgAck
}

// handleHello opens a streaming session after verifying the stored
// coins once, so every subsequent delta merges without re-checking and
// raw updates are sketched with hash functions the site agrees on.
func (s *Server) handleHello(st *connState, payload []byte) ([]byte, byte) {
	var m helloMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	want := s.coord.Coins()
	if m.Config != want.Config || m.Seed != want.Seed || m.Copies != want.Copies {
		return failReply(fmt.Errorf("stored-coins mismatch: session %+v vs coordinator %+v",
			Coins{Config: m.Config, Seed: m.Seed, Copies: m.Copies}, want))
	}
	if m.Site == "" {
		return failReply(fmt.Errorf("streaming session needs a site name"))
	}
	st.site = m.Site
	st.open = true
	st.app = s.coord.NewApplier()
	s.mu.Lock()
	seen := s.seenSites[m.Site]
	s.seenSites[m.Site]++
	s.mu.Unlock()
	s.met.sessionsOpened.Inc()
	if seen > 0 {
		s.met.sessionReopens.Inc()
		s.log.Info("session reopened", "site", m.Site, "prior_sessions", seen)
	} else {
		s.log.Info("session opened", "site", m.Site)
	}
	return nil, msgOK
}

func (st *connState) requireSession() error {
	if !st.open {
		return fmt.Errorf("no streaming session: send hello first")
	}
	return nil
}

func (s *Server) handleUpdateBatch(st *connState, payload []byte) ([]byte, byte) {
	if err := st.requireSession(); err != nil {
		return failReply(err)
	}
	// Decode into the connection's scratch slice: ApplyUpdates copies
	// what it keeps (coalesced WAL entries or direct counter updates),
	// so the scratch is free for reuse as soon as it returns.
	seq, ups, err := decodeUpdateBatch(payload, st.ups[:0], st.names.intern)
	st.ups = ups[:0]
	if err != nil {
		return failReply(err)
	}
	if err := st.app.ApplyUpdates(st.site, ups); err != nil {
		return failReply(err)
	}
	st.accepted += uint64(len(ups))
	return st.ackReply(seq)
}

func (s *Server) handleDelta(st *connState, payload []byte) ([]byte, byte) {
	if err := st.requireSession(); err != nil {
		return failReply(err)
	}
	seq, count, stream, synopsis, err := decodeDelta(payload)
	if err != nil {
		return failReply(err)
	}
	fam, err := core.DecodeFamily(synopsis)
	if err != nil {
		return failReply(err)
	}
	if err := s.coord.ApplyDelta(st.site, st.names.intern(stream), fam, count); err != nil {
		return failReply(err)
	}
	st.accepted += count
	return st.ackReply(seq)
}

func (s *Server) handleHeartbeat(st *connState, payload []byte) ([]byte, byte) {
	seq, err := decodeHeartbeat(payload)
	if err != nil {
		return failReply(err)
	}
	s.met.heartbeats.Inc()
	return st.ackReply(seq)
}

// handleWatch registers the continuous queries and dedicates this
// connection to streaming their results. It writes the ok reply itself
// before the pusher starts, so the client never sees a result frame
// ahead of the registration reply.
func (s *Server) handleWatch(st *connState, payload []byte) ([]byte, byte) {
	if st.watcher != nil {
		return failReply(fmt.Errorf("watch already registered on this connection"))
	}
	var m watchMsg
	if err := decodeGob(payload, &m); err != nil {
		return failReply(err)
	}
	w, err := s.coord.Watch(WatchSpec{
		Exprs:        m.Exprs,
		Views:        m.Views,
		Eps:          m.Eps,
		EveryUpdates: m.EveryUpdates,
		Interval:     time.Duration(m.IntervalMillis) * time.Millisecond,
	})
	if err != nil {
		return failReply(err)
	}
	if err := st.write(msgOK, nil); err != nil {
		w.Close()
		return nil, 0
	}
	st.watcher = w
	st.watchWG.Add(1)
	s.watchWG.Add(1)
	go s.pushWatchResults(st, w)
	return nil, 0
}

// pushWatchResults forwards watcher results to the connection until
// the watcher closes (slow consumer, coordinator shutdown) or the
// write path fails.
func (s *Server) pushWatchResults(st *connState, w *Watcher) {
	defer st.watchWG.Done()
	defer s.watchWG.Done()
	timeout := s.WatchWriteTimeout
	if timeout <= 0 {
		timeout = defaultWatchWriteTimeout
	}
	for res := range w.C {
		out, err := encodeGob(watchResultMsg{
			Expr:    res.Expr,
			View:    res.View,
			Group:   res.Group,
			Epoch:   res.Epoch,
			Updates: res.Updates,
			Delta:   res.Delta,
			Err:     res.Err,
			Est: estimateMsg{
				Value: res.Est.Value, Level: res.Est.Level, Copies: res.Est.Copies,
				Valid: res.Est.Valid, Witnesses: res.Est.Witnesses, Union: res.Est.Union,
				StdError: res.Est.StdError,
			},
		})
		if err != nil {
			continue
		}
		if err := st.writeDeadline(msgWatchResult, out, timeout); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.watchTimeouts.Inc()
				s.log.Warn("watch client stalled: result write timed out",
					"remote", st.conn.RemoteAddr().String(), "timeout", timeout.String())
			}
			w.Close()
			return
		}
	}
	// The hub closed the channel (e.g. slow consumer): tell the client
	// why before the connection goes quiet.
	if reason := w.Reason(); reason != "closed" {
		s.log.Warn("watch terminated", "remote", st.conn.RemoteAddr().String(), "reason", reason)
		if out, err := encodeGob(errorMsg{Message: "watch terminated: " + reason}); err == nil {
			st.writeDeadline(msgError, out, timeout)
		}
	}
}

// StreamSession is the client side of a streaming session: after the
// hello handshake a site stays connected and interleaves raw update
// batches, locally sketched deltas, and heartbeats for as long as it
// likes. A session shares its Client's serialization; use one session
// per Client. Session frames are built in a reusable scratch buffer, so
// a steady-state sender allocates nothing per frame.
type StreamSession struct {
	c    *Client
	site string

	mu   sync.Mutex
	seq  uint64
	pbuf []byte // frame build scratch
}

// OpenStream performs the hello handshake and returns the session.
// The coins must match the coordinator's exactly.
func (c *Client) OpenStream(site string, coins Coins) (*StreamSession, error) {
	payload, err := encodeGob(helloMsg{Site: site, Config: coins.Config, Seed: coins.Seed, Copies: coins.Copies})
	if err != nil {
		return nil, err
	}
	typ, reply, err := c.roundTrip(msgHello, payload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgOK:
		return &StreamSession{c: c, site: site}, nil
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to hello", typ)
	}
}

// Site returns the session's site name.
func (s *StreamSession) Site() string { return s.site }

// beginFrame starts a session frame of the given type in the scratch
// buffer, claiming the next sequence number.
// caller holds: mu
func (s *StreamSession) beginFrame(typ byte) (frame []byte, seq uint64) {
	s.seq++
	return append(s.pbuf[:0], typ, 0, 0, 0, 0), s.seq
}

// exchange finalizes the frame, sends it, and decodes the binary ack.
// caller holds: mu (released only after the reply is decoded, so the
// scratch buffers are never shared between in-flight frames)
func (s *StreamSession) exchange(frame []byte, seq uint64) (uint64, error) {
	s.pbuf = frame[:0]
	frame, err := finishFrame(frame)
	if err != nil {
		return 0, err
	}
	return s.c.sessionExchange(frame, seq)
}

// SendUpdates ships one batch of raw updates for the coordinator to
// sketch centrally. It returns the session's accepted-update total.
func (s *StreamSession) SendUpdates(ups []datagen.Update) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, seq := s.beginFrame(msgUpdateBatch)
	frame = appendUpdateBatch(frame, seq, ups)
	return s.exchange(frame, seq)
}

// SendDelta ships one locally sketched synopsis delta, merged by
// linearity at the coordinator. count reports how many local updates
// the delta summarizes (for the coordinator's watch triggers).
func (s *StreamSession) SendDelta(stream string, fam *core.Family, count uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, seq := s.beginFrame(msgDelta)
	frame = appendDeltaHeader(frame, seq, stream, count)
	frame = fam.AppendTo(frame)
	return s.exchange(frame, seq)
}

// SendFlush ships every stream of a flush (e.g. ingest.Engine.Flush),
// in sorted order for reproducibility, crediting totalCount updates to
// the first delta.
func (s *StreamSession) SendFlush(deltas map[string]*core.Family, totalCount uint64) error {
	names := make([]string, 0, len(deltas))
	for name := range deltas {
		names = append(names, name)
	}
	sort.Strings(names)
	count := totalCount
	for _, name := range names {
		if _, err := s.SendDelta(name, deltas[name], count); err != nil {
			return fmt.Errorf("stream %q: %w", name, err)
		}
		count = 0
	}
	return nil
}

// Heartbeat probes session liveness and returns the accepted-update
// total.
func (s *StreamSession) Heartbeat() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, seq := s.beginFrame(msgHeartbeat)
	frame = appendHeartbeat(frame, seq)
	return s.exchange(frame, seq)
}

// WatchEvent is one continuous-query result delivered to a watching
// client. Exactly one of Expr and View is set: Expr for a standing
// set-expression result, View (plus Group for grouped views) for a
// continuous-view result.
type WatchEvent struct {
	Expr    string
	View    string // continuous view this result belongs to, if any
	Group   string // group key within the view ("" for ungrouped views)
	Epoch   uint64
	Updates uint64
	Est     core.Estimate
	Delta   float64 // ISTREAM views only: change in Est.Value since the last emit
	Err     string  // per-round evaluation error, or terminal session error
	// Terminal marks the last event of the stream: the server ended the
	// watch (Err carries its reason — e.g. a slow-consumer drop or
	// coordinator shutdown) or the connection failed. No further events
	// follow; the channel closes next.
	Terminal bool
}

// WatchRequest describes a watch registration: standing set
// expressions and/or continuous views (registered earlier with
// CreateView) whose results stream back on this connection.
type WatchRequest struct {
	Exprs        []string      // set expressions evaluated each round
	Views        []string      // continuous views evaluated each round
	Eps          float64       // target standard error (0 = coordinator default)
	EveryUpdates uint64        // fire a round after this many accepted updates
	Interval     time.Duration // also fire on this wall-clock period
}

// Watch registers standing continuous queries and dedicates this
// client's connection to the result stream: the returned channel
// yields one event per expression per evaluation round until the
// server drops the watch or the connection closes. every triggers a
// round after that many accepted updates; interval adds wall-clock
// rounds; either may be zero. To watch continuous views, use
// Subscribe.
//
// Results are delivered through bounded queues at both ends — the
// coordinator's per-watcher queue and this channel — and the
// coordinator never blocks on a watcher: a client that stops reading
// loses rounds, and past the coordinator's MaxDrops consecutive
// losses the watch is dropped server-side. The stream then ends with
// one final event carrying Terminal=true and the server's reason in
// Err ("watch terminated: slow consumer: ..."), after which the
// channel closes. A connection failure likewise yields a terminal
// event (including after a local Close, where the reason is the local
// read error).
func (c *Client) Watch(exprs []string, eps float64, every uint64, interval time.Duration) (<-chan WatchEvent, error) {
	return c.Subscribe(WatchRequest{Exprs: exprs, Eps: eps, EveryUpdates: every, Interval: interval})
}

// Subscribe is the general form of Watch: it registers any mix of set
// expressions and continuous views. Grouped views yield one event per
// live group per round; ISTREAM views emit only groups whose estimate
// changed, with the change in the event's Delta field.
func (c *Client) Subscribe(req WatchRequest) (<-chan WatchEvent, error) {
	payload, err := encodeGob(watchMsg{
		Exprs:          req.Exprs,
		Views:          req.Views,
		Eps:            req.Eps,
		EveryUpdates:   req.EveryUpdates,
		IntervalMillis: int64(req.Interval / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	typ, reply, err := c.roundTrip(msgWatch, payload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgOK:
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to watch", typ)
	}
	c.mu.Lock()
	c.watching = true
	c.mu.Unlock()
	ch := make(chan WatchEvent, 32)
	go func() {
		defer close(ch)
		// terminal delivers the final event without ever blocking: an
		// abandoned consumer must not leak this goroutine.
		terminal := func(reason string) {
			select {
			case ch <- WatchEvent{Err: reason, Terminal: true}:
			default:
			}
		}
		for {
			typ, payload, err := readFrame(c.conn)
			if err != nil {
				terminal("watch stream closed: " + err.Error())
				return
			}
			switch typ {
			case msgWatchResult:
				var m watchResultMsg
				if err := decodeGob(payload, &m); err != nil {
					terminal("undecodable watch result: " + err.Error())
					return
				}
				ch <- WatchEvent{
					Expr:    m.Expr,
					View:    m.View,
					Group:   m.Group,
					Epoch:   m.Epoch,
					Updates: m.Updates,
					Delta:   m.Delta,
					Err:     m.Err,
					Est: core.Estimate{
						Value: m.Est.Value, Level: m.Est.Level, Copies: m.Est.Copies,
						Valid: m.Est.Valid, Witnesses: m.Est.Witnesses, Union: m.Est.Union,
						StdError: m.Est.StdError,
					},
				}
			case msgError:
				var m errorMsg
				if err := decodeGob(payload, &m); err != nil {
					terminal("undecodable watch error frame: " + err.Error())
				} else {
					terminal(m.Message)
				}
				return
			default:
				terminal(fmt.Sprintf("unexpected frame type %#x in watch stream", typ))
				return
			}
		}
	}()
	return ch, nil
}
