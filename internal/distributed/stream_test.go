package distributed

import (
	"net"
	"strings"
	"testing"
	"time"

	"setsketch/internal/datagen"
	"setsketch/internal/hashing"
	"setsketch/internal/ingest"
)

func sessionUpdates(seed uint64, n int) []datagen.Update {
	rng := hashing.NewRNG(seed)
	streams := []string{"A", "B"}
	ups := make([]datagen.Update, 0, n)
	for i := 0; i < n; i++ {
		ups = append(ups, datagen.Update{
			Stream: streams[rng.Uint64n(2)],
			Elem:   rng.Uint64n(1 << 22),
			Delta:  1,
		})
	}
	return ups
}

// TestStreamingSessionRawUpdates: a session forwarding raw update
// batches yields coordinator synopses bit-identical to a one-shot push
// of the same updates — the linearity exactness the protocol depends
// on — while the session stays open across batches and heartbeats.
func TestStreamingSessionRawUpdates(t *testing.T) {
	ups := sessionUpdates(21, 2000)

	// Ground truth: one-shot site push.
	refCoord, _ := NewCoordinator(testCoins)
	site, _ := NewSite("ref", testCoins)
	for _, u := range ups {
		if err := site.Update(u.Stream, u.Elem, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := refCoord.PushSnapshot("ref", site.Snapshot()); err != nil {
		t.Fatal(err)
	}

	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sess, err := cli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	var accepted uint64
	for i := 0; i < len(ups); i += 250 {
		end := i + 250
		if end > len(ups) {
			end = len(ups)
		}
		if accepted, err = sess.SendUpdates(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Heartbeat(); err != nil {
			t.Fatal(err)
		}
	}
	if accepted != uint64(len(ups)) {
		t.Errorf("session accepted %d updates, want %d", accepted, len(ups))
	}
	for _, name := range []string{"A", "B"} {
		got, want := coord.Family(name), refCoord.Family(name)
		if got == nil || !got.Equal(want) {
			t.Errorf("stream %q: streamed synopsis differs from one-shot push", name)
		}
	}
	if coord.Updates() != uint64(len(ups)) {
		t.Errorf("coordinator credited %d updates, want %d", coord.Updates(), len(ups))
	}
}

// TestStreamingSessionDeltas: an ingest engine flushing periodic
// deltas over a session reconstructs — by linearity, exactly — the
// synopsis a one-shot push of all updates would have produced.
func TestStreamingSessionDeltas(t *testing.T) {
	ups := sessionUpdates(22, 3000)

	refCoord, _ := NewCoordinator(testCoins)
	site, _ := NewSite("ref", testCoins)
	for _, u := range ups {
		if err := site.Update(u.Stream, u.Elem, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := refCoord.PushSnapshot("ref", site.Snapshot()); err != nil {
		t.Fatal(err)
	}

	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sess, err := cli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := ingest.New(testCoins.Config, testCoins.Seed, testCoins.Copies,
		ingest.Options{Workers: 3, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var sinceFlush uint64
	for i, u := range ups {
		if err := eng.Update(u.Stream, u.Elem, u.Delta); err != nil {
			t.Fatal(err)
		}
		sinceFlush++
		if (i+1)%700 == 0 || i == len(ups)-1 {
			if err := sess.SendFlush(eng.Flush(), sinceFlush); err != nil {
				t.Fatal(err)
			}
			sinceFlush = 0
		}
	}
	for _, name := range []string{"A", "B"} {
		got, want := coord.Family(name), refCoord.Family(name)
		if got == nil || !got.Equal(want) {
			t.Errorf("stream %q: delta-streamed synopsis differs from one-shot push", name)
		}
	}
	// Delta counts keep the coordinator's update accounting exact.
	if coord.Updates() != uint64(len(ups)) {
		t.Errorf("coordinator credited %d updates, want %d", coord.Updates(), len(ups))
	}
	// The estimates agree, since the underlying synopses are identical.
	got, err := coord.Estimate("A | B", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := refCoord.Estimate("A | B", 0.2)
	if got.Value != want.Value {
		t.Errorf("streamed estimate %.1f != one-shot estimate %.1f", got.Value, want.Value)
	}
}

// TestSessionRejections: coins mismatch on hello, session frames
// before hello, and garbled session payloads all produce clean error
// replies without killing the server.
func TestSessionRejections(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Session frames before hello are rejected.
	sess := &StreamSession{c: cli, site: "rogue"}
	if _, err := sess.SendUpdates(sessionUpdates(1, 3)); err == nil ||
		!strings.Contains(err.Error(), "hello") {
		t.Errorf("pre-hello batch: err = %v, want hello-required rejection", err)
	}
	fam, _ := testCoins.NewFamily()
	if _, err := sess.SendDelta("A", fam, 1); err == nil ||
		!strings.Contains(err.Error(), "hello") {
		t.Errorf("pre-hello delta: err = %v, want hello-required rejection", err)
	}

	// Coins mismatch on hello is rejected.
	wrong := testCoins
	wrong.Seed = 1234
	if _, err := cli.OpenStream("edge", wrong); err == nil ||
		!strings.Contains(err.Error(), "coins mismatch") {
		t.Errorf("wrong-coins hello: err = %v, want coins mismatch", err)
	}
	wrong = testCoins
	wrong.Copies = testCoins.Copies / 2
	if _, err := cli.OpenStream("edge", wrong); err == nil ||
		!strings.Contains(err.Error(), "coins mismatch") {
		t.Errorf("wrong-copy-count hello: err = %v, want coins mismatch", err)
	}
	if _, err := cli.OpenStream("", testCoins); err == nil {
		t.Error("empty site name accepted")
	}

	// The connection is still usable for a correct handshake.
	good, err := cli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Heartbeat(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionProtocolErrorPaths: truncated frames, oversized frames,
// unknown types, and garbled payloads on a live session connection.
func TestSessionProtocolErrorPaths(t *testing.T) {
	// Truncated frame: header advertises more payload than arrives.
	short := strings.NewReader("\x05\x00\x00\x00\x10abc")
	if _, _, err := readFrame(short); err == nil {
		t.Error("truncated frame accepted")
	}
	// Truncated header.
	if _, _, err := readFrame(strings.NewReader("\x05\x00")); err == nil {
		t.Error("truncated header accepted")
	}

	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Oversized frame header on a session type: rejected client-side by
	// writeFrame, and a hand-built oversized header kills no server.
	if err := writeFrame(conn, msgUpdateBatch, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized session frame written")
	}

	// Garbled payloads for every session type produce error replies.
	for _, typ := range []byte{msgHello, msgUpdateBatch, msgDelta, msgHeartbeat, msgWatch} {
		if err := writeFrame(conn, typ, []byte{0xff, 0x01}); err != nil {
			t.Fatal(err)
		}
		replyTyp, _, err := readFrame(conn)
		if err != nil {
			t.Fatalf("type %#x: server hung up on garbage: %v", typ, err)
		}
		if replyTyp != msgError {
			t.Errorf("type %#x: reply %#x, want msgError", typ, replyTyp)
		}
	}

	// Unknown type still answered after session traffic.
	if err := writeFrame(conn, 0x66, nil); err != nil {
		t.Fatal(err)
	}
	if replyTyp, _, err := readFrame(conn); err != nil || replyTyp != msgError {
		t.Errorf("unknown type: reply %#x err %v", replyTyp, err)
	}
}

// TestWatchContinuousQuery: a standing query re-evaluates every N
// accepted updates and streams results over the network, and the ack
// sequence numbers line up.
func TestWatchContinuousQuery(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	watchCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer watchCli.Close()
	events, err := watchCli.Watch([]string{"A | B", "A & B"}, 0.2, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The connection is now dedicated: further requests fail fast.
	if _, err := watchCli.Streams(); err == nil {
		t.Error("request accepted on a watching connection")
	}

	pushCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pushCli.Close()
	sess, err := pushCli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	ups := sessionUpdates(30, 1500)
	for i := 0; i < len(ups); i += 250 {
		if _, err := sess.SendUpdates(ups[i : i+250]); err != nil {
			t.Fatal(err)
		}
	}

	// 1500 updates at every-500 → 3 rounds × 2 expressions.
	got := make(map[string]int)
	var lastUnion WatchEvent
	for i := 0; i < 6; i++ {
		select {
		case ev := <-events:
			if ev.Err != "" {
				t.Fatalf("watch event error: %s", ev.Err)
			}
			got[ev.Expr]++
			if ev.Expr == "A | B" {
				lastUnion = ev
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for watch results; got %v", got)
		}
	}
	if got["A | B"] != 3 || got["A & B"] != 3 {
		t.Errorf("rounds per expression = %v, want 3 each", got)
	}
	if lastUnion.Updates != 1500 || lastUnion.Epoch != 3 {
		t.Errorf("last union event at updates=%d epoch=%d, want 1500/3", lastUnion.Updates, lastUnion.Epoch)
	}
	if lastUnion.Est.Value <= 0 {
		t.Errorf("union estimate %.1f, want positive", lastUnion.Est.Value)
	}

	// Invalid watch registrations are rejected.
	badCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer badCli.Close()
	if _, err := badCli.Watch([]string{"A &"}, 0.2, 100, 0); err == nil {
		t.Error("malformed watch expression accepted")
	}
	if _, err := badCli.Watch(nil, 0.2, 100, 0); err == nil {
		t.Error("empty watch accepted")
	}
	if _, err := badCli.Watch([]string{"A"}, 0.2, 0, 0); err == nil {
		t.Error("watch with no trigger accepted")
	}
}

// TestWatchSlowConsumerDropped: a watcher that stops draining its
// bounded queue is dropped — channel closed with a slow-consumer
// reason — while a healthy watcher on the same coordinator keeps
// receiving results; ingest never blocks.
func TestWatchSlowConsumerDropped(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	slow, err := coord.Watch(WatchSpec{
		Exprs: []string{"A"}, Eps: 0.3, EveryUpdates: 10, Buffer: 2, MaxDrops: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := coord.Watch(WatchSpec{
		Exprs: []string{"A"}, Eps: 0.3, EveryUpdates: 10, Buffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if coord.Watchers() != 2 {
		t.Fatalf("%d watchers registered, want 2", coord.Watchers())
	}

	// Nobody drains `slow`: buffer 2 fills, then 3 more drops trip it.
	rng := hashing.NewRNG(8)
	for round := 0; round < 10; round++ {
		ups := make([]datagen.Update, 10)
		for i := range ups {
			ups[i] = datagen.Update{Stream: "A", Elem: rng.Uint64n(1 << 20), Delta: 1}
		}
		if err := coord.ApplyUpdates("s", ups); err != nil {
			t.Fatal(err)
		}
	}
	if coord.Watchers() != 1 {
		t.Errorf("%d watchers left, want 1 (slow one dropped)", coord.Watchers())
	}
	if reason := slow.Reason(); !strings.Contains(reason, "slow consumer") {
		t.Errorf("drop reason = %q, want slow consumer", reason)
	}
	// The channel is closed after the buffered backlog.
	n := 0
	for range slow.C {
		n++
	}
	if n != 2 {
		t.Errorf("slow watcher got %d buffered results, want 2", n)
	}
	// The healthy watcher saw every round.
	if len(healthy.C) != 10 {
		t.Errorf("healthy watcher has %d results, want 10", len(healthy.C))
	}
	healthy.Close()
	if coord.Watchers() != 0 {
		t.Errorf("%d watchers after close, want 0", coord.Watchers())
	}
	// Closing twice is safe; delivering after close is a no-op.
	healthy.Close()
}

// TestWatchTickAndInterval: Tick forces a round for all watchers, and
// an interval-only watcher fires without any updates.
func TestWatchTickAndInterval(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	w, err := coord.Watch(WatchSpec{Exprs: []string{"A"}, EveryUpdates: 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	coord.Tick()
	select {
	case res := <-w.C:
		if res.Epoch != 1 {
			t.Errorf("tick round epoch = %d, want 1", res.Epoch)
		}
		// No stream "A" yet: the round reports the evaluation error.
		if res.Err == "" {
			t.Error("expected evaluation error for unknown stream")
		}
	case <-time.After(time.Second):
		t.Fatal("Tick produced no result")
	}

	iw, err := coord.Watch(WatchSpec{Exprs: []string{"A"}, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer iw.Close()
	select {
	case <-iw.C:
	case <-time.After(2 * time.Second):
		t.Fatal("interval watcher never fired")
	}
}
