package distributed

import (
	"fmt"
	"sync"
	"testing"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/hashing"
)

// Differential pins for the lock-striped coordinator: any shard count
// must converge to state bit-identical to the unsharded (-shards 1)
// layout — under concurrent sessions, across WAL recovery with a
// different stripe count, and with the coordinator digest cache on or
// off — and the warm cached-digest apply path must not allocate.

// TestSetShardsValidation: rounding, clamps, and the refuse-once-live
// contract.
func TestSetShardsValidation(t *testing.T) {
	c, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {65, 128}, {maxShards + 1, maxShards},
	} {
		if err := c.SetShards(tc.ask); err != nil {
			t.Fatalf("SetShards(%d): %v", tc.ask, err)
		}
		if got := c.Shards(); got != tc.want {
			t.Errorf("SetShards(%d) -> %d stripes, want %d", tc.ask, got, tc.want)
		}
	}
	if err := c.SetShards(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Shards(); got&(got-1) != 0 || got < 1 {
		t.Errorf("default shard count %d is not a power of two", got)
	}
	// Once any state exists, repartitioning must refuse: routing is not
	// migrated.
	if err := c.ApplyUpdates("site", []datagen.Update{{Stream: "A", Elem: 1, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetShards(4); err == nil {
		t.Fatal("SetShards succeeded on a coordinator holding state")
	}
}

// TestShardRoutingStable: the stream->stripe routing is a pure function
// of the name and the stripe count — independent of the coordinator
// instance, so recovery on a new process lands streams deterministically.
func TestShardRoutingStable(t *testing.T) {
	a, _ := NewCoordinator(testCoins)
	b, _ := NewCoordinator(testCoins)
	for _, c := range []*Coordinator{a, b} {
		if err := c.SetShards(16); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("stream-%d", i)
		ia, ib := a.shardIndex(name), b.shardIndex(name)
		if ia != ib {
			t.Fatalf("routing for %q differs across instances: %d vs %d", name, ia, ib)
		}
		if ia < 0 || ia >= a.Shards() {
			t.Fatalf("routing for %q out of range: %d", name, ia)
		}
	}
}

// shardWorkload builds per-session batches over a shared, overlapping
// stream population with skewed element multiplicities (heavy hitters
// repeat, exercising the digest cache) plus per-session private
// streams (exercising disjoint-stripe parallelism).
func shardWorkload(sessions, batches, batchSize int) [][][]datagen.Update {
	rng := hashing.NewRNG(7)
	out := make([][][]datagen.Update, sessions)
	for s := range out {
		out[s] = make([][]datagen.Update, batches)
		for b := range out[s] {
			ups := make([]datagen.Update, batchSize)
			for i := range ups {
				u := &ups[i]
				switch rng.Uint64n(4) {
				case 0:
					u.Stream = fmt.Sprintf("private%d", s)
				case 1:
					u.Stream = "A"
				case 2:
					u.Stream = "B"
				default:
					u.Stream = fmt.Sprintf("shared%d", rng.Uint64n(8))
				}
				if rng.Uint64n(3) == 0 {
					u.Elem = rng.Uint64n(32) // heavy hitters: cache fodder
				} else {
					u.Elem = rng.Uint64n(1 << 16)
				}
				u.Delta = 1
				if rng.Uint64n(8) == 0 {
					u.Delta = -1
				}
			}
			out[s][b] = ups
		}
	}
	return out
}

// applyWorkloadSequential drives the whole workload through one
// coordinator session by session — the single-threaded reference.
func applyWorkloadSequential(t *testing.T, c *Coordinator, work [][][]datagen.Update) {
	t.Helper()
	for s, session := range work {
		site := fmt.Sprintf("site-%d", s)
		for _, batch := range session {
			if err := c.ApplyUpdates(site, batch); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedBitIdenticalConcurrent is the tentpole differential pin:
// for stripe counts 1, 4, and 16 — with the coordinator digest cache
// armed — concurrent sessions (one Applier each, like real streaming
// connections) racing ad-hoc estimates and a standing watcher must
// leave state bit-identical to the sequential unsharded reference.
// Counter linearity makes this exact: every counter is a sum of
// per-update contributions, so apply order cannot matter.
func TestShardedBitIdenticalConcurrent(t *testing.T) {
	work := shardWorkload(8, 12, 100)

	ref, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetShards(1); err != nil {
		t.Fatal(err)
	}
	applyWorkloadSequential(t, ref, work)
	refEst, err := ref.Estimate("(A | B) - shared3", 0.2)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c, err := NewCoordinator(testCoins)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.SetShards(shards); err != nil {
				t.Fatal(err)
			}
			c.SetDigestCache(1024)

			w, err := c.Watch(WatchSpec{
				Exprs:        []string{"A & B", "shared0 | shared1"},
				EveryUpdates: 500,
				Buffer:       4, // small on purpose: drops must not corrupt state
			})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for range w.C { // drain slowly-ish; losses are fine
				}
			}()

			var wg sync.WaitGroup
			for s := range work {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					a := c.NewApplier() // per-session, like stream.go
					site := fmt.Sprintf("site-%d", s)
					for _, batch := range work[s] {
						if err := a.ApplyUpdates(site, batch); err != nil {
							t.Error(err)
							return
						}
					}
				}(s)
			}
			// Concurrent readers: ad-hoc estimates racing the writers.
			stop := make(chan struct{})
			var rg sync.WaitGroup
			rg.Add(1)
			go func() {
				defer rg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Early rounds may fail (streams not seen yet) —
					// only crashes/races are failures here.
					c.Estimate("A | B", 0.3)
					c.StateVersion()
				}
			}()
			wg.Wait()
			close(stop)
			rg.Wait()
			w.Close()

			// The cross-shard version fence: quiescent now, so two
			// readings must agree.
			if v1, v2 := c.StateVersion(), c.StateVersion(); v1 != v2 {
				t.Fatalf("StateVersion unstable at quiescence: %d then %d", v1, v2)
			}
			requireSameState(t, ref, c)
			got, err := c.Estimate("(A | B) - shared3", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if got != refEst {
				t.Errorf("estimate diverges from unsharded reference:\n got %+v\nwant %+v", got, refEst)
			}
		})
	}
}

// TestShardedWALRecoveryBitIdentical: a WAL written under one stripe
// layout must recover bit-identically under any other — the log speaks
// streams, not stripes.
func TestShardedWALRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	work := shardWorkload(4, 6, 80)

	writer, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.SetShards(4); err != nil {
		t.Fatal(err)
	}
	writer.SetDigestCache(512)
	l := openTestLog(t, dir)
	writer.AttachWAL(l)
	applyWorkloadSequential(t, writer, work)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 16} {
		c, err := NewCoordinator(testCoins)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		l2 := openTestLog(t, dir)
		if _, err := c.Recover(l2); err != nil {
			t.Fatalf("recovery into %d shards: %v", shards, err)
		}
		requireSameState(t, writer, c)
		l2.Close()
	}
}

// TestApplierCachedDigestAllocFree pins the warm hot path: with the
// coordinator digest cache armed, no WAL, and every element already
// cached, a session's ApplyUpdates performs zero allocations —
// coalescing, cache probes, shard routing, and counter application all
// run in the Applier's reused buffers.
func TestApplierCachedDigestAllocFree(t *testing.T) {
	c, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetShards(4); err != nil {
		t.Fatal(err)
	}
	c.SetDigestCache(4096)
	a := c.NewApplier()
	seed := make([]datagen.Update, 96)
	for i := range seed {
		stream := "A"
		if i%2 == 1 {
			stream = "B"
		}
		seed[i] = datagen.Update{Stream: stream, Elem: uint64(i % 48), Delta: 1}
	}
	// Warm: first batch computes + installs every digest, creates the
	// streams and site accounting entries.
	if err := a.ApplyUpdates("pin", seed); err != nil {
		t.Fatal(err)
	}
	// The cache is direct-mapped: two elements hashing to one slot evict
	// each other forever, and the recompute on every pass allocates by
	// design. Pin the batch to the collision-free survivors (the batch
	// any heavy-hitter steady state converges to).
	ups := seed[:0:0]
	for _, u := range seed {
		if c.dcache.Contains(u.Elem) {
			ups = append(ups, u)
		}
	}
	if len(ups) < len(seed)/2 {
		t.Fatalf("cache retained only %d of %d warm elements", len(ups), len(seed))
	}
	if err := a.ApplyUpdates("pin", ups); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := a.ApplyUpdates("pin", ups); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm cached-digest ApplyUpdates allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCoordDigestCacheMetrics: every coalesced entry is a hit or a
// miss, a warm second pass is all hits, and the counters add up.
func TestCoordDigestCacheMetrics(t *testing.T) {
	c, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDigestCache(1024)
	ups := make([]datagen.Update, 64)
	for i := range ups {
		ups[i] = datagen.Update{Stream: "A", Elem: uint64(i), Delta: 1}
	}
	if err := c.ApplyUpdates("edge", ups); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.met.digestCacheHits.Value(), c.met.digestCacheMisses.Value(); hits != 0 || misses != 64 {
		t.Fatalf("cold batch: hits=%d misses=%d, want 0/64", hits, misses)
	}
	// Direct-mapped collisions may have evicted a few elements; the warm
	// pass hits exactly the survivors and misses the rest.
	cached := uint64(0)
	for i := range ups {
		if c.dcache.Contains(ups[i].Elem) {
			cached++
		}
	}
	if err := c.ApplyUpdates("edge", ups); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.met.digestCacheHits.Value(), c.met.digestCacheMisses.Value()
	if hits != cached || misses != 64+(64-cached) {
		t.Fatalf("warm batch: hits=%d misses=%d, want %d/%d", hits, misses, cached, 64+(64-cached))
	}
	if hits+misses != 128 {
		t.Fatalf("lookup accounting: %d hits + %d misses != 128 lookups", hits, misses)
	}
	// Disabled cache: no lookups counted at all.
	c2, _ := NewCoordinator(testCoins)
	c2.SetDigestCache(-1)
	if err := c2.ApplyUpdates("edge", ups); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c2.met.digestCacheHits.Value(), c2.met.digestCacheMisses.Value(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted lookups: hits=%d misses=%d", hits, misses)
	}
}

// TestEstimateConsistentCut: an estimate over streams owned by
// different stripes must never observe a batch half-applied. Writers
// apply batches that keep "L" and "R" equal (same elements both
// sides); a reader evaluating L - R under the estimate path's shard
// RLocks must always see an empty difference.
func TestEstimateConsistentCut(t *testing.T) {
	c, err := NewCoordinator(testCoins)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetShards(16); err != nil {
		t.Fatal(err)
	}
	// Seed both streams so the expression compiles against live state.
	seed := []datagen.Update{{Stream: "L", Elem: 0, Delta: 1}, {Stream: "R", Elem: 0, Delta: 1}}
	if err := c.ApplyUpdates("w", seed); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := c.NewApplier()
		e := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := []datagen.Update{
				{Stream: "L", Elem: e % 4096, Delta: 1},
				{Stream: "R", Elem: e % 4096, Delta: 1},
			}
			if err := a.ApplyUpdates("w", batch); err != nil {
				t.Error(err)
				return
			}
			e++
		}
	}()
	for i := 0; i < 300; i++ {
		est, err := c.Estimate("L - R", 0.2)
		if err != nil {
			if err == core.ErrNoObservations {
				continue // an empty difference may yield no witnesses
			}
			t.Fatal(err)
		}
		if est.Value != 0 {
			t.Fatalf("round %d: L - R estimated %v on identical streams (torn read)", i, est.Value)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkCoordApplyDigestCache measures the coordinator's raw-update
// apply path with the digest cache off and on — the cache trades the
// per-element hash bill (r first-level polynomials + r*s second-level
// bits) for one mutex-guarded probe.
func BenchmarkCoordApplyDigestCache(b *testing.B) {
	ups := make([]datagen.Update, 256)
	rng := hashing.NewRNG(3)
	for i := range ups {
		// Zipf-ish: half the volume from 64 heavy hitters.
		e := rng.Uint64n(1 << 16)
		if i%2 == 0 {
			e = rng.Uint64n(64)
		}
		ups[i] = datagen.Update{Stream: "A", Elem: e, Delta: 1}
	}
	for _, cache := range []int{-1, 8192} {
		name := "cache=off"
		if cache > 0 {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			c, err := NewCoordinator(testCoins)
			if err != nil {
				b.Fatal(err)
			}
			c.SetDigestCache(cache)
			a := c.NewApplier()
			if err := a.ApplyUpdates("bench", ups); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(ups)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.ApplyUpdates("bench", ups); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoordApplyShardsParallel drives concurrent sessions on
// disjoint streams through 1..16 stripes — the contention surface the
// sharding exists to remove. On a multi-core host the sharded layouts
// scale with RunParallel's workers; shards=1 serializes them.
func BenchmarkCoordApplyShardsParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := NewCoordinator(testCoins)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.SetShards(shards); err != nil {
				b.Fatal(err)
			}
			c.SetDigestCache(8192)
			var sid int64
			var mu sync.Mutex
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				sid++
				site := fmt.Sprintf("site-%d", sid)
				mu.Unlock()
				a := c.NewApplier()
				ups := make([]datagen.Update, 128)
				rng := hashing.NewRNG(uint64(sid))
				for i := range ups {
					ups[i] = datagen.Update{
						Stream: site + "-stream", // disjoint per session
						Elem:   rng.Uint64n(1 << 12),
						Delta:  1,
					}
				}
				for pb.Next() {
					if err := a.ApplyUpdates(site, ups); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
