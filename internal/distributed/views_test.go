package distributed

import (
	"strings"
	"testing"
	"time"

	"setsketch/internal/datagen"
)

func mustCreateView(t *testing.T, c *Coordinator, stmt string) {
	t.Helper()
	if _, err := c.CreateView(stmt); err != nil {
		t.Fatalf("CreateView(%q): %v", stmt, err)
	}
}

func TestCreateDropListViews(t *testing.T) {
	c, _ := NewCoordinator(testCoins)
	mustCreateView(t, c, "CREATE VIEW ab AS A | B")
	mustCreateView(t, c, "CREATE VIEW per AS logins WINDOW 5m SLIDE 1m GROUP BY tenant EMIT ISTREAM")

	if _, err := c.CreateView("CREATE VIEW ab AS A & B"); err == nil {
		t.Error("duplicate view accepted")
	}
	if _, err := c.CreateView("CREATE VIEW bad AS A &"); err == nil {
		t.Error("malformed expression accepted")
	}
	if _, err := c.CreateView("DROP VIEW ab"); err == nil {
		t.Error("CreateView accepted a DROP statement")
	}

	stmts := c.ViewStatements()
	want := []string{
		"CREATE VIEW ab AS (A | B)",
		"CREATE VIEW per AS logins WINDOW 5m SLIDE 1m GROUP BY tenant EMIT ISTREAM",
	}
	if strings.Join(stmts, "\n") != strings.Join(want, "\n") {
		t.Fatalf("catalog:\n%s\nwant:\n%s", strings.Join(stmts, "\n"), strings.Join(want, "\n"))
	}
	if err := c.DropView("ab"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("ab"); err == nil {
		t.Error("double drop accepted")
	}
	if got := c.ViewStatements(); len(got) != 1 || !strings.Contains(got[0], "per") {
		t.Fatalf("catalog after drop: %v", got)
	}
}

// TestWatchViewRounds: an unwindowed, ungrouped view over a single
// stream must estimate exactly what an ad-hoc query over the same
// stream reports — the view's bucket family is built from the same
// updates with the same stored coins.
func TestWatchViewRounds(t *testing.T) {
	c, _ := NewCoordinator(testCoins)
	mustCreateView(t, c, "CREATE VIEW va AS A")
	w, err := c.Watch(WatchSpec{Views: []string{"va"}, Eps: 0.2, EveryUpdates: 1 << 60, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var ups []datagen.Update
	for i := 0; i < 300; i++ {
		ups = append(ups, datagen.Update{Stream: "A", Elem: uint64(i * 131), Delta: 1})
	}
	if err := c.ApplyUpdates("edge", ups); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	res := <-w.C
	if res.View != "va" || res.Group != "" || res.Err != "" {
		t.Fatalf("unexpected result: %+v", res)
	}
	adhoc, err := c.Estimate("A", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Value != adhoc.Value {
		t.Errorf("view estimate %v, ad-hoc estimate %v", res.Est.Value, adhoc.Value)
	}
}

// TestWatchViewMissingStream: a view over a stream that has never
// appeared evaluates as the empty set, not an error.
func TestWatchViewMissingStream(t *testing.T) {
	c, _ := NewCoordinator(testCoins)
	mustCreateView(t, c, "CREATE VIEW ghost AS NeverSeen")
	w, err := c.Watch(WatchSpec{Views: []string{"ghost"}, EveryUpdates: 1 << 60, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c.Tick()
	res := <-w.C
	if res.Err != "" {
		t.Fatalf("missing stream should be empty set, got error %q", res.Err)
	}
	if res.Est.Value != 0 {
		t.Errorf("empty view estimated %v, want 0", res.Est.Value)
	}
}

// TestWatchViewGroupedISTREAM drives two tenants through a grouped
// ISTREAM view: the first round emits both groups, a round after
// updates to only one tenant emits only that group, and an unchanged
// round emits nothing.
func TestWatchViewGroupedISTREAM(t *testing.T) {
	c, _ := NewCoordinator(testCoins)
	mustCreateView(t, c, "CREATE VIEW per AS logins GROUP BY tenant EMIT ISTREAM")
	w, err := c.Watch(WatchSpec{Views: []string{"per"}, Eps: 0.2, EveryUpdates: 1 << 60, Buffer: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	feed := func(tenant string, base, n int) {
		t.Helper()
		var ups []datagen.Update
		for i := 0; i < n; i++ {
			ups = append(ups, datagen.Update{Stream: tenant + ":logins", Elem: uint64(base + i), Delta: 1})
		}
		if err := c.ApplyUpdates("edge", ups); err != nil {
			t.Fatal(err)
		}
	}
	feed("acme", 0, 200)
	feed("globex", 1000, 120)

	c.Tick()
	got := map[string]WatchResult{}
	for i := 0; i < 2; i++ {
		res := <-w.C
		got[res.Group] = res
	}
	for _, g := range []string{"acme", "globex"} {
		res, ok := got[g]
		if !ok {
			t.Fatalf("no first-round result for group %q (got %v)", g, got)
		}
		if res.Err != "" || res.Est.Value <= 0 || res.Delta != res.Est.Value {
			t.Errorf("group %q first emit: %+v", g, res)
		}
	}

	// Only acme changes: the next round must emit acme alone, with the
	// delta of the change.
	prevAcme := got["acme"].Est.Value
	feed("acme", 5000, 150)
	c.Tick()
	res := <-w.C
	if res.Group != "acme" || res.Err != "" {
		t.Fatalf("second round: %+v", res)
	}
	if res.Delta != res.Est.Value-prevAcme {
		t.Errorf("delta %v, want %v", res.Delta, res.Est.Value-prevAcme)
	}
	select {
	case extra := <-w.C:
		t.Fatalf("unchanged group emitted: %+v", extra)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestViewCatalogWALRecovery is the continuous-query half of the core
// durability property: after a crash (no clean close, fsynced appends
// only) the recovered coordinator has the identical view catalog, and
// an unwindowed view's contents — rebuilt from replayed updates —
// estimate identically.
func TestViewCatalogWALRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, _ := NewCoordinator(testCoins)
	l1 := openTestLog(t, dir)
	c1.AttachWAL(l1)

	mustCreateView(t, c1, "CREATE VIEW va AS A | B")
	mustCreateView(t, c1, "CREATE VIEW dropped AS A")
	mustCreateView(t, c1, "CREATE VIEW per AS logins WINDOW 10m SLIDE 2m GROUP BY tenant")
	testWorkload(t, c1)
	if err := c1.DropView("dropped"); err != nil {
		t.Fatal(err)
	}
	// No close: simulate kill -9.

	c2, _ := NewCoordinator(testCoins)
	l2 := openTestLog(t, dir)
	defer l2.Close()
	if _, err := c2.Recover(l2); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, c1, c2)
	w1, w2 := c1.ViewStatements(), c2.ViewStatements()
	if strings.Join(w1, "\n") != strings.Join(w2, "\n") {
		t.Fatalf("view catalog diverged:\n%s\nvs\n%s", strings.Join(w1, "\n"), strings.Join(w2, "\n"))
	}
	if len(w2) != 2 {
		t.Fatalf("recovered catalog: %v", w2)
	}

	// The unwindowed view's contents must estimate identically.
	viewEst := func(c *Coordinator) float64 {
		t.Helper()
		w, err := c.Watch(WatchSpec{Views: []string{"va"}, Eps: 0.1, EveryUpdates: 1 << 60, Buffer: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		c.Tick()
		res := <-w.C
		if res.Err != "" {
			t.Fatalf("view round error: %s", res.Err)
		}
		return res.Est.Value
	}
	if e1, e2 := viewEst(c1), viewEst(c2); e1 != e2 {
		t.Errorf("view estimates diverge after recovery: %v vs %v", e1, e2)
	}
	l1.Close()
}

// TestViewCatalogSnapshotRecovery: the catalog travels in the snapshot,
// and RecView records past the snapshot replay on top of it.
func TestViewCatalogSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, _ := NewCoordinator(testCoins)
	l1 := openTestLog(t, dir)
	c1.AttachWAL(l1)

	mustCreateView(t, c1, "CREATE VIEW va AS A")
	mustCreateView(t, c1, "CREATE VIEW vb AS B")
	testWorkload(t, c1)
	if err := c1.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Catalog changes after the snapshot: replayed from the WAL suffix.
	mustCreateView(t, c1, "CREATE VIEW vc AS A & B")
	if err := c1.DropView("vb"); err != nil {
		t.Fatal(err)
	}

	c2, _ := NewCoordinator(testCoins)
	l2 := openTestLog(t, dir)
	defer l2.Close()
	rs, err := c2.Recover(l2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotSeq == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	w1, w2 := c1.ViewStatements(), c2.ViewStatements()
	if strings.Join(w1, "\n") != strings.Join(w2, "\n") {
		t.Fatalf("view catalog diverged:\n%s\nvs\n%s", strings.Join(w1, "\n"), strings.Join(w2, "\n"))
	}
	l1.Close()
}

// TestViewProtocolEndToEnd exercises the wire surface: create and list
// views over TCP, subscribe a watch to a grouped view, stream updates
// through a session, and receive per-group results.
func TestViewProtocolEndToEnd(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	admin, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.CreateView("CREATE VIEW per AS logins GROUP BY tenant"); err != nil {
		t.Fatal(err)
	}
	if err := admin.CreateView("CREATE VIEW per AS logins"); err == nil {
		t.Error("duplicate view accepted over the wire")
	}
	if err := admin.CreateView("CREATE VIEW bad AS ("); err == nil {
		t.Error("malformed statement accepted over the wire")
	}
	stmts, err := admin.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 || stmts[0] != "CREATE VIEW per AS logins GROUP BY tenant" {
		t.Fatalf("ListViews: %v", stmts)
	}

	watchCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer watchCli.Close()
	events, err := watchCli.Subscribe(WatchRequest{Views: []string{"per"}, Eps: 0.2, EveryUpdates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := watchCli.Subscribe(WatchRequest{Views: []string{"nope"}, EveryUpdates: 1}); err == nil {
		t.Error("watch on unknown view accepted")
	}

	siteCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer siteCli.Close()
	sess, err := siteCli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	var ups []datagen.Update
	for i := 0; i < 200; i++ {
		tenant := "acme"
		if i%4 == 0 {
			tenant = "globex"
		}
		ups = append(ups, datagen.Update{Stream: tenant + ":logins", Elem: uint64(i), Delta: 1})
	}
	if _, err := sess.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	got := map[string]WatchEvent{}
	for len(got) < 2 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("watch stream closed early (got %v)", got)
			}
			if ev.Err != "" {
				t.Fatalf("watch error: %s", ev.Err)
			}
			if ev.View != "per" {
				t.Fatalf("unexpected event: %+v", ev)
			}
			got[ev.Group] = ev
		case <-deadline:
			t.Fatalf("timed out waiting for group results (got %v)", got)
		}
	}
	if got["acme"].Est.Value <= got["globex"].Est.Value {
		t.Errorf("acme (150 elems) should exceed globex (50): %v vs %v",
			got["acme"].Est.Value, got["globex"].Est.Value)
	}

	if err := admin.DropView("per"); err != nil {
		t.Fatal(err)
	}
	stmts, err = admin.ListViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 0 {
		t.Fatalf("catalog after drop: %v", stmts)
	}
}
