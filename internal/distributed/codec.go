package distributed

import (
	"encoding/binary"
	"fmt"
	"io"

	"setsketch/internal/datagen"
)

// Hand-rolled binary codec for the session hot path. The high-rate
// frames — update batches, synopsis deltas, heartbeats, and their acks —
// bypass gob entirely: payloads are fixed-width little-endian integers
// plus uvarint-prefixed strings, encoded by appending into reusable
// scratch buffers and decoded by slicing the frame payload in place.
// With the per-connection frame reader below, a steady-state session
// moves update batches with zero allocations per frame on both ends
// (pinned by TestSessionFrameCodecAllocFree). Low-rate control frames
// (hello, query, watch, views) stay gob-encoded.
//
// Payload layouts (little-endian):
//
//	updateBatch  seq u64, count uvarint,
//	             then per update: len uvarint, stream bytes, elem u64, delta u64
//	delta        seq u64, count u64, len uvarint, stream bytes, synopsis bytes
//	heartbeat    seq u64
//	ack          seq u64, accepted u64
//
// The delta synopsis runs to the end of the payload (core.AppendTo
// framing, with its own checksum); deltas are self-delimiting because
// the frame header carries the payload length.

var errShortFrame = fmt.Errorf("distributed: truncated session frame")

// appendFrame appends a complete wire frame (type, big-endian length,
// payload) to buf.
func appendFrame(buf []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFrame {
		return buf, fmt.Errorf("distributed: frame of %d bytes exceeds limit", len(payload))
	}
	buf = append(buf, typ, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf[len(buf)-4:], uint32(len(payload)))
	return append(buf, payload...), nil
}

// finishFrame patches the length field of a frame whose payload was
// built in place after a 5-byte header (frame[0] = type).
func finishFrame(frame []byte) ([]byte, error) {
	if len(frame)-frameHeaderLen > maxFrame {
		return nil, fmt.Errorf("distributed: frame of %d bytes exceeds limit", len(frame)-frameHeaderLen)
	}
	binary.BigEndian.PutUint32(frame[1:frameHeaderLen], uint32(len(frame)-frameHeaderLen))
	return frame, nil
}

const frameHeaderLen = 5

// frameReader reads length-prefixed frames into a reusable buffer, so
// a long-lived connection stops allocating per frame once the buffer
// has grown to its working size. The returned payload aliases the
// buffer and is valid only until the next read.
type frameReader struct {
	// hdr lives in the struct rather than on read's stack: a stack
	// array's slice would escape into the io.ReadFull interface call
	// and cost one allocation per frame.
	hdr [frameHeaderLen]byte
	buf []byte
}

func (fr *frameReader) read(r io.Reader) (byte, []byte, error) {
	if _, err := io.ReadFull(r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[1:]))
	if n > maxFrame {
		return 0, nil, fmt.Errorf("distributed: frame of %d bytes exceeds limit", n)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return fr.hdr[0], payload, nil
}

// appendUpdateBatch encodes an updateBatch payload.
func appendUpdateBatch(buf []byte, seq uint64, ups []datagen.Update) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for _, u := range ups {
		buf = binary.AppendUvarint(buf, uint64(len(u.Stream)))
		buf = append(buf, u.Stream...)
		buf = binary.LittleEndian.AppendUint64(buf, u.Elem)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(u.Delta))
	}
	return buf
}

// appendDeltaHeader encodes everything of a delta payload up to the
// synopsis bytes, which the caller appends (core.Family.AppendTo).
func appendDeltaHeader(buf []byte, seq uint64, stream string, count uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, count)
	buf = binary.AppendUvarint(buf, uint64(len(stream)))
	return append(buf, stream...)
}

// appendHeartbeat encodes a heartbeat payload.
func appendHeartbeat(buf []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, seq)
}

// appendAck encodes an ack payload.
func appendAck(buf []byte, seq, accepted uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return binary.LittleEndian.AppendUint64(buf, accepted)
}

// decodeUint64 slices one fixed-width integer off the payload.
func decodeUint64(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, errShortFrame
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// decodeBytes slices one uvarint-prefixed byte string off the payload.
// The result aliases p.
func decodeBytes(p []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(p)
	if k <= 0 || n > uint64(len(p)-k) {
		return nil, nil, errShortFrame
	}
	return p[k : k+int(n)], p[k+int(n):], nil
}

// decodeUpdateBatch parses an updateBatch payload, appending the
// updates to ups (typically a reset scratch slice) with stream names
// resolved through intern, and returns the sequence number and the
// extended slice. Nothing in the result aliases p.
func decodeUpdateBatch(p []byte, ups []datagen.Update, intern func([]byte) string) (uint64, []datagen.Update, error) {
	seq, p, err := decodeUint64(p)
	if err != nil {
		return 0, ups, err
	}
	count, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, ups, errShortFrame
	}
	p = p[k:]
	for i := uint64(0); i < count; i++ {
		name, rest, err := decodeBytes(p)
		if err != nil {
			return 0, ups, err
		}
		var u datagen.Update
		u.Stream = intern(name)
		if u.Elem, rest, err = decodeUint64(rest); err != nil {
			return 0, ups, err
		}
		var d uint64
		if d, rest, err = decodeUint64(rest); err != nil {
			return 0, ups, err
		}
		u.Delta = int64(d)
		ups = append(ups, u)
		p = rest
	}
	if len(p) != 0 {
		return 0, ups, fmt.Errorf("distributed: %d trailing bytes in update batch", len(p))
	}
	return seq, ups, nil
}

// decodeDelta parses a delta payload. stream and synopsis alias p.
func decodeDelta(p []byte) (seq, count uint64, stream, synopsis []byte, err error) {
	if seq, p, err = decodeUint64(p); err != nil {
		return
	}
	if count, p, err = decodeUint64(p); err != nil {
		return
	}
	if stream, p, err = decodeBytes(p); err != nil {
		return
	}
	return seq, count, stream, p, nil
}

// decodeHeartbeat parses a heartbeat payload.
func decodeHeartbeat(p []byte) (uint64, error) {
	seq, _, err := decodeUint64(p)
	return seq, err
}

// decodeAck parses an ack payload.
func decodeAck(p []byte) (seq, accepted uint64, err error) {
	if seq, p, err = decodeUint64(p); err != nil {
		return
	}
	accepted, _, err = decodeUint64(p)
	return
}

// interner deduplicates stream names decoded from the wire, so a
// session that streams updates for a bounded set of streams allocates
// each name string once per connection instead of once per update.
// Lookups with a byte-slice key do not allocate (the compiler elides
// the string conversion in map reads); capacity is bounded to keep a
// misbehaving peer from growing the table without limit.
type interner struct {
	names map[string]string
}

const maxInterned = 1 << 16

func (in *interner) intern(b []byte) string {
	if s, ok := in.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if in.names == nil {
		in.names = make(map[string]string)
	}
	if len(in.names) < maxInterned {
		in.names[s] = s
	}
	return s
}
