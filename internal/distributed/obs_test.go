package distributed

import (
	"net"
	"strings"
	"testing"
	"time"

	"setsketch/internal/obs"
)

// startObservedServer is startServer with a metrics registry attached
// to both the server and its coordinator.
func startObservedServer(t *testing.T, coord *Coordinator, reg *obs.Registry) (addr string, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObservability(reg, nil)
	srv := NewServer(coord)
	srv.SetObservability(reg, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return l.Addr().String(), func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	}
}

// TestSessionMetricsAckPath: one streaming session exercising every
// session frame type leaves exact per-type frame counts, session
// counters, and coordinator ingest counters in the registry, and a
// reconnecting site is counted as a reopen.
func TestSessionMetricsAckPath(t *testing.T) {
	reg := obs.NewRegistry()
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startObservedServer(t, coord, reg)
	defer shutdown()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sess, err := cli.OpenStream("edge", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	ups := sessionUpdates(11, 100)
	if _, err := sess.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}
	site, _ := NewSite("edge", testCoins)
	for _, u := range sessionUpdates(12, 50) {
		if err := site.Update(u.Stream, u.Elem, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	for name, fam := range site.Snapshot() {
		if _, err := sess.SendDelta(name, fam, 0); err != nil {
			t.Fatal(err)
		}
	}
	deltas := uint64(len(site.Snapshot()))
	if _, err := sess.Heartbeat(); err != nil {
		t.Fatal(err)
	}

	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	recv := func(typ string) uint64 {
		return counter(obs.Label("stream_frames_received_total", "type", typ))
	}
	sent := func(typ string) uint64 {
		return counter(obs.Label("stream_frames_sent_total", "type", typ))
	}
	for typ, want := range map[string]uint64{
		"hello": 1, "update_batch": 1, "delta": deltas, "heartbeat": 1, "unknown": 0,
	} {
		if got := recv(typ); got != want {
			t.Errorf("frames received type=%s = %d, want %d", typ, got, want)
		}
	}
	if got, want := sent("ack"), deltas+2; got != want {
		t.Errorf("acks sent = %d, want %d", got, want)
	}
	if got := sent("ok"); got != 1 {
		t.Errorf("ok frames sent = %d, want 1", got)
	}
	if got := sent("error"); got != 0 {
		t.Errorf("error frames sent = %d, want 0", got)
	}
	if got := counter("stream_sessions_opened_total"); got != 1 {
		t.Errorf("sessions opened = %d, want 1", got)
	}
	if got := counter("stream_session_reopens_total"); got != 0 {
		t.Errorf("session reopens = %d, want 0", got)
	}
	if got := counter("stream_heartbeats_total"); got != 1 {
		t.Errorf("heartbeats = %d, want 1", got)
	}
	if got := counter("coord_raw_update_batches_total"); got != 1 {
		t.Errorf("raw batches = %d, want 1", got)
	}
	if got := counter("coord_raw_updates_total"); got != 100 {
		t.Errorf("raw updates = %d, want 100", got)
	}
	if got := counter("coord_deltas_merged_total"); got != deltas {
		t.Errorf("deltas merged = %d, want %d", got, deltas)
	}
	// Every replied frame passed through the ack-latency histogram.
	wantHandled := uint64(3 + deltas) // hello + batch + deltas + heartbeat
	if got := reg.Histogram("stream_handle_seconds", "", nil).Count(); got != wantHandled {
		t.Errorf("handle latency observations = %d, want %d", got, wantHandled)
	}

	// A site that comes back is a reopen, not a fresh session.
	cli2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.OpenStream("edge", testCoins); err != nil {
		t.Fatal(err)
	}
	if got := counter("stream_session_reopens_total"); got != 1 {
		t.Errorf("session reopens after reconnect = %d, want 1", got)
	}
}

// TestWatchSlowConsumerMetrics: an undrained watcher accumulates
// delivered/dropped counts and is unregistered as a slow consumer,
// visible both on the Watcher and in the watch_* counters.
func TestWatchSlowConsumerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	coord, _ := NewCoordinator(testCoins)
	coord.SetObservability(reg, nil)
	w, err := coord.Watch(WatchSpec{
		Exprs: []string{"A"}, Eps: 0.2, EveryUpdates: 1, Buffer: 1, MaxDrops: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := coord.ApplyUpdates("s", sessionUpdates(uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-w.C:
			open = ok
		case <-deadline:
			t.Fatal("watcher channel never closed")
		}
	}
	if !strings.Contains(w.Reason(), "slow consumer") {
		t.Errorf("drop reason = %q, want slow consumer", w.Reason())
	}
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := counter("watch_rounds_total"); got != 3 {
		t.Errorf("watch rounds = %d, want 3", got)
	}
	if got := counter("watch_evaluations_total"); got != 3 {
		t.Errorf("watch evaluations = %d, want 3", got)
	}
	if got := counter("watch_results_delivered_total"); got != 1 {
		t.Errorf("results delivered = %d, want 1", got)
	}
	if got := counter("watch_results_dropped_total"); got != 2 {
		t.Errorf("results dropped = %d, want 2", got)
	}
	if got := counter("watch_slow_consumer_drops_total"); got != 1 {
		t.Errorf("slow-consumer drops = %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "watch_slow_consumer_drops_total 1") {
		t.Error("exposition missing slow-consumer drop count")
	}
}

// TestWatchTerminalEvent: when the coordinator ends a watch, the
// protocol client's event stream ends with a Terminal event carrying
// the server's reason instead of closing silently.
func TestWatchTerminalEvent(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	addr, shutdown := startServer(t, coord)
	defer shutdown()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	events, err := cli.Watch([]string{"A"}, 0.2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if coord.Watchers() != 1 {
		t.Fatalf("watchers = %d, want 1", coord.Watchers())
	}
	coord.CloseWatchers("coordinator shutting down")

	var last WatchEvent
	sawTerminal := false
	deadline := time.After(5 * time.Second)
	for !sawTerminal {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event channel closed without a terminal event (last %+v)", last)
			}
			last = ev
			sawTerminal = ev.Terminal
		case <-deadline:
			t.Fatal("no terminal event before deadline")
		}
	}
	if !strings.Contains(last.Err, "watch terminated: coordinator shutting down") {
		t.Errorf("terminal reason = %q, want coordinator shutdown reason", last.Err)
	}
	if _, ok := <-events; ok {
		t.Error("events delivered after the terminal event")
	}
}
