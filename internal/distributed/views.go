package distributed

// Continuous-view catalog: CREATE VIEW / DROP VIEW statements applied
// to the embedded cq.Engine under vmu, with each accepted statement
// WAL-logged (append-before-apply, like every other mutation) so the
// catalog survives restarts. Catalog changes additionally hold the
// fence exclusively: no update batch is in flight while the view set
// changes, which is what lets batch writers consult the hasViews flag
// with one atomic load and skip the engine entirely when the catalog
// is empty. Recovery re-runs the snapshot's statement list plus the
// RecView suffix; window/group sketch contents then rebuild from the
// replayed update records.

import (
	"fmt"
	"time"

	"setsketch/internal/cq"
	"setsketch/internal/wal"
)

// SetCQOptions reconfigures the continuous-view engine (group bound,
// group separator, window clock). Call it before Recover and before
// the coordinator serves traffic, like SetObservability — it replaces
// the engine, discarding any registered views. opts.NewFamily is
// overridden with the coordinator's coins.
//
//sketchvet:wal-exempt pre-traffic setup: replaces the engine before recovery or traffic
func (c *Coordinator) SetCQOptions(opts cq.Options) error {
	opts.NewFamily = c.coins.NewFamily
	e, err := cq.NewEngine(opts)
	if err != nil {
		return err
	}
	c.vmu.Lock()
	c.cqe = e
	c.refreshHasViewsLocked()
	c.vmu.Unlock()
	return nil
}

// refreshHasViewsLocked re-derives the batch writers' fast-path flag
// from the catalog. Callers that can race live batches (CreateView,
// DropView) also hold the fence exclusively, so no batch observes the
// flag mid-change.
// caller holds: vmu
func (c *Coordinator) refreshHasViewsLocked() {
	v, _, _ := c.cqe.Counts()
	c.hasViews.Store(v > 0)
}

// CreateView registers a continuous view from a CREATE VIEW statement,
// WAL-logging the canonical form before applying it. The returned spec
// is the validated, canonicalized definition.
//
//sketchvet:wal-handler
func (c *Coordinator) CreateView(statement string) (cq.ViewSpec, error) {
	st, err := cq.ParseStatement(statement)
	if err != nil {
		return cq.ViewSpec{}, err
	}
	if st.Create == nil {
		return cq.ViewSpec{}, fmt.Errorf("distributed: expected a CREATE VIEW statement")
	}
	spec := *st.Create
	c.fence.Lock()
	defer c.fence.Unlock()
	c.vmu.Lock()
	defer c.vmu.Unlock()
	// Duplicate check precedes the WAL append so the post-append
	// Register cannot fail (the statement parsed, so it validates).
	if c.cqe.View(spec.Name) != nil {
		return cq.ViewSpec{}, fmt.Errorf("distributed: view %q already exists", spec.Name)
	}
	if err := c.logRecord(c.viewRecord(spec.Name, spec.Statement())); err != nil {
		return cq.ViewSpec{}, err
	}
	if _, err := c.cqe.Register(spec); err != nil {
		return cq.ViewSpec{}, err // unreachable: validated + no duplicate
	}
	c.refreshHasViewsLocked()
	c.log.Info("view created", "view", spec.Name, "statement", spec.Statement())
	return spec, nil
}

// DropView removes a view from the catalog, WAL-logging the drop.
// Watchers attached to the view keep running and report an unknown-view
// error each round until closed.
//
//sketchvet:wal-handler
func (c *Coordinator) DropView(name string) error {
	c.fence.Lock()
	defer c.fence.Unlock()
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if c.cqe.View(name) == nil {
		return fmt.Errorf("distributed: view %q does not exist", name)
	}
	if err := c.logRecord(c.viewRecord(name, "DROP VIEW "+name)); err != nil {
		return err
	}
	c.cqe.Drop(name)
	c.refreshHasViewsLocked()
	c.log.Info("view dropped", "view", name)
	return nil
}

// viewRecord renders a catalog statement as a WAL record, or nil when
// durability is off.
func (c *Coordinator) viewRecord(name, statement string) *wal.Record {
	if c.wlog == nil {
		return nil
	}
	return &wal.Record{Type: wal.RecView, View: name, Statement: statement}
}

// applyViewStatementLocked applies a catalog statement to the engine
// without logging — the recovery path (snapshot view lists and RecView
// replay).
// caller holds: vmu
//
//sketchvet:wal-exempt recovery replay applies already-logged catalog records
func (c *Coordinator) applyViewStatementLocked(statement string) error {
	st, err := cq.ParseStatement(statement)
	if err != nil {
		return err
	}
	switch {
	case st.Create != nil:
		if c.cqe.View(st.Create.Name) != nil {
			// A snapshot view re-created by a replayed RecView (the
			// record predates the snapshot's catalog capture but was
			// not pruned yet): the catalog already has the newer state.
			return nil
		}
		_, err := c.cqe.Register(*st.Create)
		return err
	default:
		c.cqe.Drop(st.Drop)
		return nil
	}
}

// Views returns every registered view's definition, sorted by name.
func (c *Coordinator) Views() []cq.ViewSpec {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.cqe.Specs()
}

// ViewStatements returns the catalog as canonical CREATE VIEW
// statements, sorted by name.
func (c *Coordinator) ViewStatements() []string {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	return c.cqe.Statements()
}

// RotateViews advances every windowed view's ring to the engine clock's
// now, evicting aged-out buckets. Updates rotate their own target rings
// lazily; this sweep exists so idle views still age (and watchers see
// the eviction through the view's version stamp).
//
//sketchvet:wal-exempt rotation is clock-derived; recovery re-ages windows from record timestamps
func (c *Coordinator) RotateViews() {
	// Read the clock through the engine under the same lock as the
	// rotation: SetCQOptions swaps the whole engine, and reading c.cqe
	// unlocked could rotate the old engine with the new engine's now.
	c.vmu.Lock()
	c.cqe.RotateAll(c.cqe.Now())
	c.vmu.Unlock()
}

// viewVersions fills out[i] with a change stamp for view names[i]: 0
// when the view does not exist, otherwise its version offset by 1 (so
// appearing and disappearing are both changes). The watcher round-skip
// logic compares stamps like streamVersions.
func (c *Coordinator) viewVersions(names []string, out []uint64) {
	c.vmu.RLock()
	defer c.vmu.RUnlock()
	for i, name := range names {
		if v := c.cqe.View(name); v != nil {
			out[i] = v.Version() + 1
		} else {
			out[i] = 0
		}
	}
}

// ViewRotator periodically rotates windowed views so eviction happens
// on time even when no updates arrive. It is the cq counterpart of
// Snapshotter.
type ViewRotator struct {
	c        *Coordinator
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// StartViewRotator runs a rotation loop at the given interval
// (typically well under the smallest SLIDE in use). A non-positive
// interval disables the loop and returns nil (Stop on nil is a no-op);
// updates and watch rounds still rotate lazily.
func StartViewRotator(c *Coordinator, interval time.Duration) *ViewRotator {
	if interval <= 0 {
		return nil
	}
	r := &ViewRotator{
		c:        c,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *ViewRotator) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.c.RotateViews()
		}
	}
}

// Stop halts the rotation loop and waits for an in-flight sweep.
func (r *ViewRotator) Stop() {
	if r == nil {
		return
	}
	close(r.stop)
	<-r.done
}
