package distributed

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/obs"
)

// Wire protocol between sites, query clients, and the coordinator:
// length-prefixed frames over TCP. Each frame is
//
//	type   u8
//	length u32 (big-endian, payload bytes)
//	payload
//
// Control payloads are gob-encoded message structs; the session hot
// path (update batches, deltas, heartbeats, acks) uses the hand-rolled
// binary codec in codec.go. Synopsis bytes inside a push or delta are
// the core serialization format (with its own checksum). Every request
// frame receives exactly one reply frame.

const (
	msgPush        = 0x01 // pushMsg: site ships one stream's synopsis
	msgQuery       = 0x02 // queryMsg: estimate a set expression
	msgStreams     = 0x03 // no payload: list merged stream names
	msgHello       = 0x04 // helloMsg: open a streaming session (stream.go)
	msgUpdateBatch = 0x05 // binary update batch within a session (codec.go)
	msgDelta       = 0x06 // binary counted synopsis delta within a session (codec.go)
	msgHeartbeat   = 0x07 // binary session keep-alive (codec.go)
	msgWatch       = 0x08 // watchMsg: register standing continuous queries
	msgCreateView  = 0x09 // createViewMsg: register a continuous view
	msgDropView    = 0x0a // dropViewMsg: remove a continuous view
	msgListViews   = 0x0b // no payload: list the view catalog
	msgOK          = 0x10 // empty reply to a successful push/hello/watch/view change
	msgEstimate    = 0x11 // estimateMsg reply to a query
	msgNames       = 0x12 // namesMsg reply to a streams request
	msgAck         = 0x13 // binary ack: session frame accepted (codec.go)
	msgWatchResult = 0x14 // watchResultMsg: streamed continuous-query result
	msgViews       = 0x15 // viewsMsg reply to a list-views request
	msgError       = 0x7f // errorMsg: request failed
)

// maxFrame bounds payload size to keep a malicious or corrupt peer
// from forcing huge allocations.
const maxFrame = 64 << 20

// drainTimeout bounds how long a shutdown waits for an in-flight
// reply write to a stalled peer before the write fails and the
// handler returns. The coordinator-side work of a dispatch (WAL
// append, state mutation) is local and always runs to completion;
// only the ack write to the network is subject to this bound.
const drainTimeout = 5 * time.Second

type pushMsg struct {
	Site     string
	Stream   string
	Synopsis []byte
}

type queryMsg struct {
	Expr string
	Eps  float64
}

type estimateMsg struct {
	Value     float64
	Level     int
	Copies    int
	Valid     int
	Witnesses int
	Union     float64
	StdError  float64
}

type namesMsg struct{ Names []string }

type createViewMsg struct{ Statement string }

type dropViewMsg struct{ Name string }

type viewsMsg struct{ Statements []string }

type errorMsg struct{ Message string }

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("distributed: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("distributed: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// Server exposes a Coordinator over TCP.
type Server struct {
	coord *Coordinator

	// WatchWriteTimeout bounds each watch-result write to a client; a
	// peer that stalls longer has its watch session torn down so it
	// cannot pin server resources. Zero selects a 10s default. Set
	// before Serve.
	WatchWriteTimeout time.Duration

	// IdleTimeout, when positive, arms a read deadline on open
	// streaming sessions (watch connections excluded — they only
	// receive): a session that sends no frame — not even a heartbeat —
	// within the window is torn down and counted as a heartbeat miss.
	// Zero (the default) disables liveness enforcement. Set before
	// Serve.
	IdleTimeout time.Duration

	met *serverMetrics
	log *obs.Logger

	watchWG sync.WaitGroup // live watch pusher goroutines
	connWG  sync.WaitGroup // live connection handler goroutines

	mu        sync.Mutex
	listener  net.Listener
	conns     map[net.Conn]struct{}
	seenSites map[string]int // hello count per site, to spot reconnects
	closed    bool
}

// NewServer wraps a coordinator for network serving.
func NewServer(coord *Coordinator) *Server {
	return &Server{
		coord:     coord,
		conns:     make(map[net.Conn]struct{}),
		seenSites: make(map[string]int),
		met:       newServerMetrics(nil),
	}
}

// SetObservability attaches a metrics registry and logger to the
// server, exporting the stream_* series documented in OPERATIONS.md.
// Call it once, before Serve; either argument may be nil. It does not
// instrument the wrapped coordinator — call the coordinator's own
// SetObservability for the coord_*/watch_* series.
func (s *Server) SetObservability(reg *obs.Registry, log *obs.Logger) {
	s.met = newServerMetrics(reg)
	s.log = log.Named("server")
	reg.GaugeFunc("stream_connections",
		"Currently open client connections.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
}

// frameTypeName names each wire frame type for the per-type frame
// counters; requests and replies are disjoint sets.
var requestTypeNames = map[byte]string{
	msgPush:        "push",
	msgQuery:       "query",
	msgStreams:     "streams",
	msgHello:       "hello",
	msgUpdateBatch: "update_batch",
	msgDelta:       "delta",
	msgHeartbeat:   "heartbeat",
	msgWatch:       "watch",
	msgCreateView:  "create_view",
	msgDropView:    "drop_view",
	msgListViews:   "list_views",
}

var replyTypeNames = map[byte]string{
	msgOK:          "ok",
	msgEstimate:    "estimate",
	msgNames:       "names",
	msgAck:         "ack",
	msgWatchResult: "watch_result",
	msgViews:       "views",
	msgError:       "error",
}

// serverMetrics is the server's instrument set; with a nil registry
// every instrument still works, it is just never collected.
type serverMetrics struct {
	framesIn   map[byte]*obs.Counter
	framesOut  map[byte]*obs.Counter
	inUnknown  *obs.Counter
	outUnknown *obs.Counter

	handleSeconds   *obs.Histogram
	connsTotal      *obs.Counter
	sessionsOpened  *obs.Counter
	sessionReopens  *obs.Counter
	heartbeats      *obs.Counter
	heartbeatMisses *obs.Counter
	watchTimeouts   *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	const (
		helpIn  = "Frames received from clients, by frame type."
		helpOut = "Frames sent to clients, by frame type."
	)
	m := &serverMetrics{
		framesIn:  make(map[byte]*obs.Counter, len(requestTypeNames)),
		framesOut: make(map[byte]*obs.Counter, len(replyTypeNames)),
	}
	for typ, name := range requestTypeNames {
		m.framesIn[typ] = reg.Counter(obs.Label("stream_frames_received_total", "type", name), helpIn)
	}
	for typ, name := range replyTypeNames {
		m.framesOut[typ] = reg.Counter(obs.Label("stream_frames_sent_total", "type", name), helpOut)
	}
	m.inUnknown = reg.Counter(obs.Label("stream_frames_received_total", "type", "unknown"), helpIn)
	m.outUnknown = reg.Counter(obs.Label("stream_frames_sent_total", "type", "unknown"), helpOut)
	m.handleSeconds = reg.Histogram("stream_handle_seconds",
		"Request dispatch-to-reply latency (the server side of session ack latency).", nil)
	m.connsTotal = reg.Counter("stream_connections_total",
		"Client connections accepted since start.")
	m.sessionsOpened = reg.Counter("stream_sessions_opened_total",
		"Streaming sessions opened (hello frames accepted).")
	m.sessionReopens = reg.Counter("stream_session_reopens_total",
		"Sessions opened by a site that had a session before (reconnects).")
	m.heartbeats = reg.Counter("stream_heartbeats_total",
		"Session heartbeat frames handled.")
	m.heartbeatMisses = reg.Counter("stream_heartbeat_misses_total",
		"Sessions torn down because no frame arrived within IdleTimeout.")
	m.watchTimeouts = reg.Counter("stream_watch_write_timeouts_total",
		"Watch-result writes abandoned after WatchWriteTimeout (stalled watch clients).")
	return m
}

func (m *serverMetrics) in(typ byte) *obs.Counter {
	if c, ok := m.framesIn[typ]; ok {
		return c
	}
	return m.inUnknown
}

func (m *serverMetrics) out(typ byte) *obs.Counter {
	if c, ok := m.framesOut[typ]; ok {
		return c
	}
	return m.outUnknown
}

// Serve accepts connections on l until Close is called. It returns nil
// after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("distributed: server already closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.connWG.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.connWG.Wait()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting and shuts down in phases. Watchers are
// dropped first — registered directly on the coordinator or through
// the protocol — so watch clients receive a terminal "coordinator
// shutting down" frame (bounded by WatchWriteTimeout per stalled
// client) instead of a silent connection reset. Then in-flight
// sessions are drained: pending reads are expired immediately, but a
// handler mid-dispatch finishes applying — and, with a WAL attached,
// logging — and acking its frame (ack writes bounded by drainTimeout)
// before its connection goes away. Only after every handler has
// returned are remaining connections torn down, so no accepted frame
// is ever half-processed by a clean shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.mu.Unlock()
	s.coord.CloseWatchers("coordinator shutting down")
	s.watchWG.Wait()
	s.mu.Lock()
	now := time.Now()
	for conn := range s.conns {
		conn.SetReadDeadline(now)
		conn.SetWriteDeadline(now.Add(drainTimeout))
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	return err
}

func (s *Server) handle(conn net.Conn) {
	st := &connState{srv: s, conn: conn}
	defer st.cleanup()
	s.met.connsTotal.Inc()
	s.log.Debug("connection opened", "remote", conn.RemoteAddr().String())
	for {
		// Arm the idle deadline under s.mu so it cannot race Close's
		// drain deadline: once closed is set, nothing re-arms, and the
		// next read fails immediately instead of idling out the drain.
		s.mu.Lock()
		closed := s.closed
		if !closed && s.IdleTimeout > 0 && st.open && st.watcher == nil {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		s.mu.Unlock()
		if closed {
			return
		}
		// The payload views the connection's reusable read buffer;
		// handlers copy anything they keep past dispatch.
		typ, payload, err := st.fr.read(conn)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !s.closing() {
				s.met.heartbeatMisses.Inc()
				s.log.Warn("session idle timeout: no frame (not even a heartbeat) within deadline",
					"site", st.site, "timeout", s.IdleTimeout.String())
			}
			return // EOF, broken peer, or shutdown drain; nothing to answer
		}
		s.met.in(typ).Inc()
		start := time.Now()
		reply, replyType := s.dispatch(st, typ, payload)
		if replyType == 0 {
			continue // handler already wrote its own frames
		}
		err = st.write(replyType, reply)
		s.met.handleSeconds.ObserveSince(start)
		if err != nil {
			return
		}
	}
}

// closing reports whether Close has begun, so the drain's expired
// read deadlines are not miscounted as heartbeat misses.
func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// dispatch executes one request and produces the reply frame. st
// carries the connection's streaming-session state; a replyType of 0
// means the handler wrote its own reply.
func (s *Server) dispatch(st *connState, typ byte, payload []byte) (reply []byte, replyType byte) {
	fail := func(err error) ([]byte, byte) {
		out, encErr := encodeGob(errorMsg{Message: err.Error()})
		if encErr != nil {
			return nil, msgError
		}
		return out, msgError
	}
	switch typ {
	case msgPush:
		var m pushMsg
		if err := decodeGob(payload, &m); err != nil {
			return fail(err)
		}
		fam, err := core.DecodeFamily(m.Synopsis)
		if err != nil {
			return fail(err)
		}
		if err := s.coord.Push(m.Site, m.Stream, fam); err != nil {
			return fail(err)
		}
		return nil, msgOK
	case msgQuery:
		var m queryMsg
		if err := decodeGob(payload, &m); err != nil {
			return fail(err)
		}
		est, err := s.coord.Estimate(m.Expr, m.Eps)
		if err != nil {
			return fail(err)
		}
		out, err := encodeGob(estimateMsg{
			Value: est.Value, Level: est.Level, Copies: est.Copies,
			Valid: est.Valid, Witnesses: est.Witnesses, Union: est.Union,
			StdError: est.StdError,
		})
		if err != nil {
			return fail(err)
		}
		return out, msgEstimate
	case msgStreams:
		out, err := encodeGob(namesMsg{Names: s.coord.Streams()})
		if err != nil {
			return fail(err)
		}
		return out, msgNames
	case msgHello:
		return s.handleHello(st, payload)
	case msgUpdateBatch:
		return s.handleUpdateBatch(st, payload)
	case msgDelta:
		return s.handleDelta(st, payload)
	case msgHeartbeat:
		return s.handleHeartbeat(st, payload)
	case msgWatch:
		return s.handleWatch(st, payload)
	case msgCreateView:
		var m createViewMsg
		if err := decodeGob(payload, &m); err != nil {
			return fail(err)
		}
		if _, err := s.coord.CreateView(m.Statement); err != nil {
			return fail(err)
		}
		return nil, msgOK
	case msgDropView:
		var m dropViewMsg
		if err := decodeGob(payload, &m); err != nil {
			return fail(err)
		}
		if err := s.coord.DropView(m.Name); err != nil {
			return fail(err)
		}
		return nil, msgOK
	case msgListViews:
		out, err := encodeGob(viewsMsg{Statements: s.coord.ViewStatements()})
		if err != nil {
			return fail(err)
		}
		return out, msgViews
	default:
		return fail(fmt.Errorf("distributed: unknown request type %#x", typ))
	}
}

// Client is a TCP client for a coordinator Server, usable both by
// stream sites (Push) and by query front-ends (Query). A Client
// serializes its requests; use one Client per goroutine for
// parallelism.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	watching bool        // connection dedicated to a watch result stream
	fr       frameReader // session reply buffer (guarded by mu)
}

// sessionExchange writes one pre-built session frame and decodes its
// binary ack, all under the connection lock so the reply buffer is
// never shared between concurrent exchanges. Returns the coordinator's
// accepted-update total for the session.
func (c *Client) sessionExchange(frame []byte, seq uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.watching {
		return 0, errors.New("distributed: connection is dedicated to a watch result stream")
	}
	if _, err := c.conn.Write(frame); err != nil {
		return 0, err
	}
	typ, reply, err := c.fr.read(c.conn)
	if err != nil {
		return 0, err
	}
	switch typ {
	case msgAck:
		ackSeq, accepted, err := decodeAck(reply)
		if err != nil {
			return 0, err
		}
		if ackSeq != seq {
			return 0, fmt.Errorf("distributed: ack for frame %d, want %d", ackSeq, seq)
		}
		return accepted, nil
	case msgError:
		return 0, remoteError(reply)
	default:
		return 0, fmt.Errorf("distributed: unexpected reply type %#x in session", typ)
	}
}

// Dial connects to a coordinator server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one frame and reads the reply.
func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.watching {
		return 0, nil, errors.New("distributed: connection is dedicated to a watch result stream")
	}
	if err := writeFrame(c.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	return readFrame(c.conn)
}

// remoteError decodes an msgError reply.
func remoteError(payload []byte) error {
	var m errorMsg
	if err := decodeGob(payload, &m); err != nil {
		return fmt.Errorf("distributed: undecodable error reply: %v", err)
	}
	return fmt.Errorf("distributed: coordinator: %s", m.Message)
}

// synopsisPool recycles encode buffers for one-shot synopsis shipping
// (Push); streaming sessions use their own per-session scratch instead.
var synopsisPool = sync.Pool{New: func() any { return new([]byte) }}

// Push ships one stream's synopsis to the coordinator.
func (c *Client) Push(site, stream string, fam *core.Family) error {
	bp := synopsisPool.Get().(*[]byte)
	defer synopsisPool.Put(bp)
	*bp = fam.AppendTo((*bp)[:0])
	payload, err := encodeGob(pushMsg{Site: site, Stream: stream, Synopsis: *bp})
	if err != nil {
		return err
	}
	typ, reply, err := c.roundTrip(msgPush, payload)
	if err != nil {
		return err
	}
	switch typ {
	case msgOK:
		return nil
	case msgError:
		return remoteError(reply)
	default:
		return fmt.Errorf("distributed: unexpected reply type %#x to push", typ)
	}
}

// PushSnapshot pushes every stream of a site snapshot.
func (c *Client) PushSnapshot(site string, snap map[string]*core.Family) error {
	for stream, fam := range snap {
		if err := c.Push(site, stream, fam); err != nil {
			return fmt.Errorf("stream %q: %w", stream, err)
		}
	}
	return nil
}

// Query asks the coordinator for a set-expression cardinality estimate.
func (c *Client) Query(expression string, eps float64) (core.Estimate, error) {
	payload, err := encodeGob(queryMsg{Expr: expression, Eps: eps})
	if err != nil {
		return core.Estimate{}, err
	}
	typ, reply, err := c.roundTrip(msgQuery, payload)
	if err != nil {
		return core.Estimate{}, err
	}
	switch typ {
	case msgEstimate:
		var m estimateMsg
		if err := decodeGob(reply, &m); err != nil {
			return core.Estimate{}, err
		}
		return core.Estimate{
			Value: m.Value, Level: m.Level, Copies: m.Copies,
			Valid: m.Valid, Witnesses: m.Witnesses, Union: m.Union,
			StdError: m.StdError,
		}, nil
	case msgError:
		return core.Estimate{}, remoteError(reply)
	default:
		return core.Estimate{}, fmt.Errorf("distributed: unexpected reply type %#x to query", typ)
	}
}

// Streams lists the stream names the coordinator has synopses for.
func (c *Client) Streams() ([]string, error) {
	typ, reply, err := c.roundTrip(msgStreams, nil)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgNames:
		var m namesMsg
		if err := decodeGob(reply, &m); err != nil {
			return nil, err
		}
		return m.Names, nil
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to streams", typ)
	}
}

// okRoundTrip sends one frame whose success reply is an empty ok.
func (c *Client) okRoundTrip(typ byte, payload []byte, what string) error {
	replyTyp, reply, err := c.roundTrip(typ, payload)
	if err != nil {
		return err
	}
	switch replyTyp {
	case msgOK:
		return nil
	case msgError:
		return remoteError(reply)
	default:
		return fmt.Errorf("distributed: unexpected reply type %#x to %s", replyTyp, what)
	}
}

// CreateView registers a continuous view from a CREATE VIEW statement
// (see QUERIES.md for the statement language). The view is WAL-logged
// by the coordinator and survives restarts.
func (c *Client) CreateView(statement string) error {
	payload, err := encodeGob(createViewMsg{Statement: statement})
	if err != nil {
		return err
	}
	return c.okRoundTrip(msgCreateView, payload, "create view")
}

// DropView removes a continuous view from the coordinator's catalog.
func (c *Client) DropView(name string) error {
	payload, err := encodeGob(dropViewMsg{Name: name})
	if err != nil {
		return err
	}
	return c.okRoundTrip(msgDropView, payload, "drop view")
}

// ListViews returns the coordinator's view catalog as canonical
// CREATE VIEW statements, sorted by view name.
func (c *Client) ListViews() ([]string, error) {
	typ, reply, err := c.roundTrip(msgListViews, nil)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgViews:
		var m viewsMsg
		if err := decodeGob(reply, &m); err != nil {
			return nil, err
		}
		return m.Statements, nil
	case msgError:
		return nil, remoteError(reply)
	default:
		return nil, fmt.Errorf("distributed: unexpected reply type %#x to list views", typ)
	}
}
