package distributed

// The per-session apply path for raw update batches. Each streaming
// session owns one Applier, so the digest scratch family and the
// coalesce buffers that used to sit behind the coordinator-wide smu
// mutex are private to the connection — two sessions hashing batches
// concurrently never serialize on scratch, even in -shards 1 mode.
// The only cross-session structure on the digest path is the optional
// coordinator digest cache (SetDigestCache), probed and refilled in
// two short critical sections per batch.

import (
	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/wal"
)

// digKey identifies an update target within one batch.
type digKey struct {
	stream string
	elem   uint64
}

// Applier applies raw update batches for one session. It owns the
// digest-evaluation scratch family and the coalesce/routing buffers
// its ApplyUpdates reuses batch to batch, making the warm cached-digest
// path allocation-free. An Applier is not safe for concurrent use;
// each session (or goroutine) holds its own, and all Appliers of one
// coordinator share its state, WAL, and digest cache.
type Applier struct {
	c *Coordinator

	scratch *core.Family // digest-evaluation family, built on first miss
	idx     map[digKey]int
	entries []wal.DigestUpdate
	elems   []uint64 // cache-miss elements, aligned with missIdx
	missIdx []int
	marks   []bool // per-shard touched flags, reset after each batch
	order   []int  // ascending touched-shard indexes
}

// NewApplier returns a fresh per-session applier. Sessions call this
// once at hello; one-off callers can use Coordinator.ApplyUpdates,
// which borrows from an internal pool.
func (c *Coordinator) NewApplier() *Applier {
	return &Applier{
		c:     c,
		idx:   make(map[digKey]int, 64),
		marks: make([]bool, len(c.shards)),
	}
}

// ApplyUpdates applies raw stream updates directly to the
// coordinator's synopses — the server side of a msgUpdateBatch
// streaming session, where thin clients forward updates for the
// coordinator to sketch centrally instead of sketching locally and
// shipping deltas. The hash bill is paid outside every lock (served
// from the coordinator digest cache when armed), the WAL append and
// the counter application happen under the destination shards' write
// locks (append-before-apply, log order is apply order per stream),
// and sessions writing disjoint shards proceed in parallel.
//
//sketchvet:wal-handler
func (a *Applier) ApplyUpdates(site string, ups []datagen.Update) error {
	if len(ups) == 0 {
		return nil
	}
	c := a.c
	packable := c.coins.Config.DigestPackable()
	var entries []wal.DigestUpdate
	if packable {
		entries = a.digests(ups)
	}
	var rec *wal.Record
	if c.wlog != nil {
		rec = &wal.Record{Type: wal.RecUpdates, Site: site, Count: uint64(len(ups))}
		if packable {
			rec.Type = wal.RecDigests
			rec.Digests = entries
		} else {
			rec.Updates = ups
		}
	}
	a.markShards(site, entries, ups, packable)
	c.fence.RLock()
	c.lockShards(a.order)
	total, err := c.applyBatchShards(rec, site, ups, entries, packable)
	c.unlockShards(a.order)
	c.fence.RUnlock()
	a.resetMarks()
	if err != nil {
		return err // not logged or not applied: not acked
	}
	c.met.rawBatches.Inc()
	c.met.rawUpdates.Add(uint64(len(ups)))
	c.evalDue(total)
	return nil
}

// digests coalesces one raw batch down to one net update per (stream,
// element), drops exact cancellations (linearity: a net-zero update is
// a no-op on every counter), and resolves each survivor's packed
// digest — from the coordinator's shared cache when armed, batch-
// computing only the misses on the session's own scratch family. The
// returned entries alias the applier's reusable buffer and are valid
// until the next call; digests themselves are immutable (cache hits
// are shared, misses are freshly allocated). Mirrors wal.DigestUpdates
// with session-owned buffers, so the warm full-hit path allocates
// nothing.
func (a *Applier) digests(ups []datagen.Update) []wal.DigestUpdate {
	c := a.c
	clear(a.idx)
	entries := a.entries[:0]
	for _, u := range ups {
		k := digKey{u.Stream, u.Elem}
		if i, ok := a.idx[k]; ok {
			entries[i].Delta += u.Delta
			continue
		}
		a.idx[k] = len(entries)
		entries = append(entries, wal.DigestUpdate{Stream: u.Stream, Elem: u.Elem, Delta: u.Delta})
	}
	a.entries = entries
	kept := entries[:0]
	for i := range entries {
		if entries[i].Delta != 0 {
			kept = append(kept, entries[i])
		}
	}
	a.elems = a.elems[:0]
	a.missIdx = a.missIdx[:0]
	if c.dcache != nil {
		c.dmu.Lock()
		for i := range kept {
			if d, ok := c.dcache.Lookup(kept[i].Elem); ok {
				kept[i].Digest = d
			} else {
				a.elems = append(a.elems, kept[i].Elem)
				a.missIdx = append(a.missIdx, i)
			}
		}
		c.dmu.Unlock()
	} else {
		for i := range kept {
			a.elems = append(a.elems, kept[i].Elem)
			a.missIdx = append(a.missIdx, i)
		}
	}
	if len(a.elems) > 0 {
		if a.scratch == nil {
			a.scratch, _ = c.coins.NewFamily() // coins validated at construction
		}
		md := a.scratch.DigestBatch(a.elems)
		for j, i := range a.missIdx {
			kept[i].Digest = md[j]
		}
		if c.dcache != nil {
			c.dmu.Lock()
			for j, i := range a.missIdx {
				c.dcache.Install(kept[i].Elem, md[j])
			}
			c.dmu.Unlock()
		}
	}
	return kept
}

// markShards computes the ascending set of stripes this batch touches
// (destination streams plus the site-accounting stripe) into a.order.
func (a *Applier) markShards(site string, entries []wal.DigestUpdate, ups []datagen.Update, packable bool) {
	c := a.c
	if len(a.marks) != len(c.shards) {
		a.marks = make([]bool, len(c.shards)) // SetShards ran after NewApplier
	}
	a.order = a.order[:0]
	if packable {
		for i := range entries {
			si := c.shardIndex(entries[i].Stream)
			if !a.marks[si] {
				a.marks[si] = true
				a.order = append(a.order, si)
			}
		}
	} else {
		for i := range ups {
			si := c.shardIndex(ups[i].Stream)
			if !a.marks[si] {
				a.marks[si] = true
				a.order = append(a.order, si)
			}
		}
	}
	if si := c.shardIndex(site); !a.marks[si] {
		a.marks[si] = true
		a.order = append(a.order, si)
	}
	insertionSort(a.order)
}

func (a *Applier) resetMarks() {
	for _, i := range a.order {
		a.marks[i] = false
	}
}

// insertionSort sorts the (short: at most maxShards) lock order in
// place without the interface allocations of the sort package.
func insertionSort(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// applyBatchShards logs and applies one raw update batch. The WAL
// append happens first (append-before-apply: an acked batch is always
// recoverable), inside the shard critical section so per-stream log
// order equals apply order, and under vmu when continuous views exist
// so the view engine observes records in log order too.
// caller holds: mu
func (c *Coordinator) applyBatchShards(rec *wal.Record, site string, ups []datagen.Update, entries []wal.DigestUpdate, packable bool) (uint64, error) {
	if c.hasViews.Load() {
		c.vmu.Lock()
		err := c.logRecord(rec)
		if err == nil {
			if packable {
				err = c.observeDigestsLocked(entries)
			} else {
				err = c.observeRawLocked(ups)
			}
		}
		c.vmu.Unlock()
		if err != nil {
			return 0, err
		}
	} else if err := c.logRecord(rec); err != nil {
		return 0, err
	}
	if packable {
		if err := c.applyDigestsLocked(entries); err != nil {
			return 0, err
		}
	} else {
		c.applyRawLocked(ups)
	}
	return c.creditLocked(site, uint64(len(ups))), nil
}

// applyDigestsLocked adds coalesced digest entries to their streams'
// merged synopses — pure counter adds; the hash bill was paid (or
// cached) when the digests were built. By linearity this is exactly
// equivalent to applying the original updates in order.
// caller holds: mu
func (c *Coordinator) applyDigestsLocked(entries []wal.DigestUpdate) error {
	for i := range entries {
		d := &entries[i]
		if len(d.Digest) != c.coins.Copies {
			return errDigestWidth(len(d.Digest), c.coins.Copies)
		}
		sh := c.shardFor(d.Stream)
		c.famLocked(sh, d.Stream).UpdateDigest(d.Digest, d.Delta)
		sh.version++
	}
	return nil
}

// applyRawLocked applies raw updates one by one — the digest-unpackable
// fallback path.
// caller holds: mu
func (c *Coordinator) applyRawLocked(ups []datagen.Update) {
	for _, u := range ups {
		sh := c.shardFor(u.Stream)
		c.famLocked(sh, u.Stream).Update(u.Elem, u.Delta)
		sh.version++
	}
}

// observeDigestsLocked feeds digest entries to the continuous-view
// engine. Digests depend only on the stored coins, so the same words
// apply unchanged to view bucket families.
// caller holds: vmu
func (c *Coordinator) observeDigestsLocked(entries []wal.DigestUpdate) error {
	for i := range entries {
		d := &entries[i]
		if err := c.cqe.ObserveDigest(d.Stream, d.Digest, d.Delta); err != nil {
			return err
		}
	}
	return nil
}

// observeRawLocked feeds raw updates to the continuous-view engine.
// caller holds: vmu
func (c *Coordinator) observeRawLocked(ups []datagen.Update) error {
	for _, u := range ups {
		if err := c.cqe.Observe(u.Stream, u.Elem, u.Delta); err != nil {
			return err
		}
	}
	return nil
}

// creditLocked records one accepted mutation's site and update-count
// accounting and returns the new credited total (watch triggers).
// caller holds: mu
func (c *Coordinator) creditLocked(site string, count uint64) uint64 {
	sh := c.shardFor(site)
	sh.sites[site]++
	sh.version++
	return c.updates.Add(count)
}
