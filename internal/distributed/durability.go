package distributed

// Durability wiring: write-ahead logging, snapshots, and crash
// recovery for the coordinator.
//
// The invariant everything here rests on is linearity: every synopsis
// counter is a sum of per-update contributions, so coordinator state
// is a pure function of the multiset of accepted mutations. The WAL
// records exactly that multiset (raw updates, packed digests, or
// serialized deltas), appended under the destination shards' write
// locks *before* the state mutation — so per-stream log order is
// apply order, an acknowledged frame is always in the log, and
// replaying a suffix of the log over a snapshot of the prefix
// reconstructs the exact (bit-identical) counters, not an
// approximation of them. Replay is shard-layout-independent: records
// carry streams by name, so a log written under -shards N recovers
// bit-identically under any other shard count.

import (
	"bytes"
	"fmt"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/obs"
	"setsketch/internal/wal"
)

// AttachWAL arms write-ahead logging: every accepted mutation (raw
// update batch, synopsis delta, one-shot push) is appended to l —
// under wal.SyncAlways, fsynced — before it is applied, so a frame is
// only acked once it is recoverable. Call it after Recover and before
// the coordinator serves traffic, like SetObservability.
func (c *Coordinator) AttachWAL(l *wal.Log) { c.wlog = l }

// WAL returns the attached write-ahead log, or nil when durability is
// off.
func (c *Coordinator) WAL() *wal.Log { return c.wlog }

// logRecord appends one record (built by the caller outside the shard
// locks) to the attached WAL. Called with the destination shards'
// write locks held, before the matching state mutation; a nil record,
// or no attached WAL, is a no-op. On error the caller must not apply:
// the batch is not acked and the write-ahead guarantee holds.
func (c *Coordinator) logRecord(rec *wal.Record) error {
	if c.wlog == nil || rec == nil {
		return nil
	}
	if _, err := c.wlog.Append(rec); err != nil {
		return fmt.Errorf("distributed: wal append: %w", err)
	}
	return nil
}

// deltaRecord renders a synopsis delta as a WAL record, or nil when no
// WAL is attached. Serialization happens outside every lock.
func (c *Coordinator) deltaRecord(site, stream string, fam *core.Family, count uint64) (*wal.Record, error) {
	if c.wlog == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("distributed: serialize delta for wal: %w", err)
	}
	return &wal.Record{Type: wal.RecDelta, Site: site, Stream: stream, Count: count, Synopsis: buf.Bytes()}, nil
}

func errDigestWidth(got, want int) error {
	return fmt.Errorf("distributed: digest has %d words for %d copies", got, want)
}

// applyWALRecord applies one replayed record — the recovery-side twin
// of the Apply* entry points, minus re-logging and watch triggers.
// Replay is single-threaded, but it takes the same locks as the live
// path so the lock discipline holds everywhere it is machine-checked.
//
//sketchvet:wal-exempt recovery replay applies already-logged records
func (c *Coordinator) applyWALRecord(rec *wal.Record) error {
	c.fence.RLock()
	defer c.fence.RUnlock()
	c.lockAllShards()
	defer c.unlockAllShards()
	switch rec.Type {
	case wal.RecUpdates:
		c.applyRawLocked(rec.Updates)
		if c.hasViews.Load() {
			c.vmu.Lock()
			err := c.observeRawLocked(rec.Updates)
			c.vmu.Unlock()
			if err != nil {
				return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
			}
		}
	case wal.RecDigests:
		if err := c.applyDigestsLocked(rec.Digests); err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		if c.hasViews.Load() {
			// Digests depend only on the stored coins, so the logged
			// words apply unchanged to view bucket families.
			c.vmu.Lock()
			err := c.observeDigestsLocked(rec.Digests)
			c.vmu.Unlock()
			if err != nil {
				return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
			}
		}
	case wal.RecDelta:
		fam, err := core.ReadFamily(bytes.NewReader(rec.Synopsis))
		if err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, core.ErrNotAligned)
		}
		if err := c.mergeDeltaLocked(rec.Stream, fam); err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		if c.hasViews.Load() {
			c.vmu.Lock()
			err := c.cqe.MergeDelta(rec.Stream, fam)
			c.vmu.Unlock()
			if err != nil {
				return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
			}
		}
	case wal.RecMark:
		return nil // site-local flush marks carry no coordinator state
	case wal.RecView:
		// Re-apply the catalog statement without re-logging it. A view
		// credits no sites/updates, so return before the accounting.
		c.vmu.Lock()
		err := c.applyViewStatementLocked(rec.Statement)
		c.refreshHasViewsLocked()
		c.vmu.Unlock()
		if err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		return nil
	default:
		return fmt.Errorf("distributed: replay seq %d: unknown record type %d", rec.Seq, rec.Type)
	}
	c.creditLocked(rec.Site, rec.Count)
	return nil
}

// RecoveryStats summarizes one crash recovery.
type RecoveryStats struct {
	SnapshotSeq     uint64 // covering seq of the snapshot loaded (0 if none)
	SnapshotStreams int    // streams restored from the snapshot
	Replayed        wal.ReplayStats
}

// Recover rebuilds coordinator state from the newest loadable snapshot
// in l's directory plus the WAL suffix past it. The coordinator must
// be fresh (no traffic applied); call Recover before AttachWAL so
// replayed records are not re-logged. A missing or corrupt snapshot
// only lengthens the replay — recovery falls back to older snapshots
// and ultimately to replaying the whole log.
func (c *Coordinator) Recover(l *wal.Log) (RecoveryStats, error) {
	var rs RecoveryStats
	snap, err := wal.LoadLatestSnapshot(l.Dir(), c.log)
	if err != nil {
		return rs, err
	}
	from := uint64(1)
	if snap != nil {
		if err := c.InstallSnapshot(snap); err != nil {
			return rs, err
		}
		from = snap.Seq + 1
		rs.SnapshotSeq = snap.Seq
		rs.SnapshotStreams = len(snap.Streams)
	}
	rs.Replayed, err = l.Replay(from, c.applyWALRecord)
	if err != nil {
		return rs, err
	}
	c.log.Info("recovered",
		"snapshot_seq", rs.SnapshotSeq,
		"replayed_records", rs.Replayed.Records,
		"replayed_updates", rs.Replayed.Updates,
		"last_seq", rs.Replayed.LastSeq,
		"elapsed", rs.Replayed.Elapsed.String())
	return rs, nil
}

// InstallSnapshot replaces the coordinator's state with a snapshot's.
// The snapshot's families are adopted directly (LoadLatestSnapshot
// already deep-read them from disk); they must match the coordinator's
// stored coins. Streams are routed to shards by name, so a snapshot
// written under any shard count installs under any other.
//
//sketchvet:wal-exempt snapshot install replaces state with an already-durable image
func (c *Coordinator) InstallSnapshot(snap *wal.Snapshot) error {
	for name, fam := range snap.Streams {
		if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
			return fmt.Errorf("distributed: snapshot stream %q: %w", name, core.ErrNotAligned)
		}
	}
	c.fence.Lock()
	defer c.fence.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.fams = make(map[string]*core.Family)
		sh.sites = make(map[string]int)
		sh.version++
		sh.mu.Unlock()
	}
	read := make(map[string]*core.Family, len(snap.Streams))
	for name, fam := range snap.Streams {
		sh := c.shardFor(name)
		sh.mu.Lock()
		sh.fams[name] = fam
		sh.mu.Unlock()
		read[name] = fam
	}
	for site, n := range snap.Sites {
		sh := c.shardFor(site)
		sh.mu.Lock()
		sh.sites[site] = n
		sh.mu.Unlock()
	}
	c.rmu.Lock()
	c.read.Store(&read)
	c.rmu.Unlock()
	c.updates.Store(snap.Updates)
	// Re-register the view catalog. Window/group sketch state is NOT
	// snapshotted — views refill from the replayed WAL suffix only,
	// landing in the bucket current at replay time, and re-converge
	// over one window of live traffic (see DESIGN.md "Continuous
	// queries" for the trade-off).
	c.vmu.Lock()
	defer c.vmu.Unlock()
	for _, stmt := range snap.Views {
		if err := c.applyViewStatementLocked(stmt); err != nil {
			return fmt.Errorf("distributed: snapshot view: %w", err)
		}
	}
	c.refreshHasViewsLocked()
	return nil
}

// WriteSnapshot writes one snapshot of the current state through the
// attached WAL and prunes segments the snapshot covers. The state is
// captured under the exclusive fence — every in-flight batch holds the
// fence shared for its whole append+apply window, so the captured
// families, site counts, view catalog, and covering WAL sequence are
// mutually consistent across all shards — and the (slow) disk write
// proceeds without any coordinator lock. A no-op when nothing was
// logged since the last snapshot.
func (c *Coordinator) WriteSnapshot() error {
	l := c.wlog
	if l == nil {
		return fmt.Errorf("distributed: no WAL attached")
	}
	c.fence.Lock()
	seq := l.LastSeq()
	total := c.updates.Load()
	siteCounts := make(map[string]int)
	famClones := make(map[string]*core.Family)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for name, f := range sh.fams {
			famClones[name] = f.Clone()
		}
		for site, n := range sh.sites {
			siteCounts[site] += n
		}
		sh.mu.RUnlock()
	}
	c.vmu.RLock()
	views := c.cqe.Statements()
	c.vmu.RUnlock()
	c.fence.Unlock()
	if seq == 0 || seq == l.LastSnapshotSeq() {
		return nil
	}
	return l.WriteSnapshot(seq, total, siteCounts, famClones, views)
}

// Snapshotter periodically snapshots coordinator state so recovery
// replay stays short and covered WAL segments can be pruned.
type Snapshotter struct {
	c        *Coordinator
	interval time.Duration
	log      *obs.Logger
	stop     chan struct{}
	done     chan struct{}
}

// StartSnapshotter runs a snapshot loop at the given interval. A
// non-positive interval disables periodic snapshots and returns nil
// (Stop on a nil Snapshotter is a no-op); callers can still snapshot
// explicitly via Coordinator.WriteSnapshot.
func StartSnapshotter(c *Coordinator, interval time.Duration, log *obs.Logger) *Snapshotter {
	if interval <= 0 {
		return nil
	}
	s := &Snapshotter{
		c:        c,
		interval: interval,
		log:      log.Named("snapshot"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Snapshotter) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.c.WriteSnapshot(); err != nil {
				s.log.Warn("periodic snapshot failed", "err", err.Error())
			}
		}
	}
}

// Stop halts the loop and waits for an in-flight snapshot to finish.
// It does not write a final snapshot — shutdown does that explicitly
// once the server has drained.
func (s *Snapshotter) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
