package distributed

// Durability wiring: write-ahead logging, snapshots, and crash
// recovery for the coordinator.
//
// The invariant everything here rests on is linearity: every synopsis
// counter is a sum of per-update contributions, so coordinator state
// is a pure function of the multiset of accepted mutations. The WAL
// records exactly that multiset (raw updates, packed digests, or
// serialized deltas), appended under the coordinator's write lock
// *before* the state mutation — so the log order is the application
// order, an acknowledged frame is always in the log, and replaying a
// suffix of the log over a snapshot of the prefix reconstructs the
// exact (bit-identical) counters, not an approximation of them.

import (
	"bytes"
	"fmt"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/obs"
	"setsketch/internal/wal"
)

// AttachWAL arms write-ahead logging: every accepted mutation (raw
// update batch, synopsis delta, one-shot push) is appended to l —
// under wal.SyncAlways, fsynced — before it is applied, so a frame is
// only acked once it is recoverable. Call it after Recover and before
// the coordinator serves traffic, like SetObservability.
func (c *Coordinator) AttachWAL(l *wal.Log) { c.wlog = l }

// WAL returns the attached write-ahead log, or nil when durability is
// off.
func (c *Coordinator) WAL() *wal.Log { return c.wlog }

// logRecordLocked appends one record (built by the caller outside the
// lock) to the attached WAL. Called under c.mu before the matching
// state mutation; a nil record, or no attached WAL (the live path
// also builds unlogged digest records purely to batch the hash bill),
// is a no-op. On error the caller must not apply: the batch is not
// acked and the write-ahead guarantee holds.
func (c *Coordinator) logRecordLocked(rec *wal.Record) error {
	if c.wlog == nil || rec == nil {
		return nil
	}
	if _, err := c.wlog.Append(rec); err != nil {
		return fmt.Errorf("distributed: wal append: %w", err)
	}
	return nil
}

// deltaRecord renders a synopsis delta as a WAL record, or nil when no
// WAL is attached. Serialization happens outside c.mu.
func (c *Coordinator) deltaRecord(site, stream string, fam *core.Family, count uint64) (*wal.Record, error) {
	if c.wlog == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if _, err := fam.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("distributed: serialize delta for wal: %w", err)
	}
	return &wal.Record{Type: wal.RecDelta, Site: site, Stream: stream, Count: count, Synopsis: buf.Bytes()}, nil
}

// applyUpdateRecordLocked applies a RecUpdates/RecDigests record to
// the family map. Digest entries skip hashing entirely — the record
// carries each element's per-copy contribution words, and by linearity
// adding them rebuilds exactly the state direct updates would have
// built. Shared by the live path (reusing the digests just logged) and
// recovery replay.
// caller holds: mu
func (c *Coordinator) applyUpdateRecordLocked(rec *wal.Record) error {
	switch rec.Type {
	case wal.RecUpdates:
		for _, u := range rec.Updates {
			c.famLocked(u.Stream).Update(u.Elem, u.Delta)
			if err := c.cqe.Observe(u.Stream, u.Elem, u.Delta); err != nil {
				return err
			}
		}
	case wal.RecDigests:
		for _, d := range rec.Digests {
			if len(d.Digest) != c.coins.Copies {
				return fmt.Errorf("distributed: record %d: digest has %d words for %d copies",
					rec.Seq, len(d.Digest), c.coins.Copies)
			}
			c.famLocked(d.Stream).UpdateDigest(d.Digest, d.Delta)
			// Digests depend only on the stored coins, so the logged
			// words apply unchanged to view bucket families.
			if err := c.cqe.ObserveDigest(d.Stream, d.Digest, d.Delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyWALRecord applies one replayed record — the recovery-side twin
// of the Apply* entry points, minus re-logging and watch triggers.
//
//sketchvet:wal-exempt recovery replay applies already-logged records
func (c *Coordinator) applyWALRecord(rec *wal.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch rec.Type {
	case wal.RecUpdates, wal.RecDigests:
		if err := c.applyUpdateRecordLocked(rec); err != nil {
			return err
		}
	case wal.RecDelta:
		fam, err := core.ReadFamily(bytes.NewReader(rec.Synopsis))
		if err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, core.ErrNotAligned)
		}
		if err := c.famLocked(rec.Stream).Merge(fam); err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		if err := c.cqe.MergeDelta(rec.Stream, fam); err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
	case wal.RecMark:
		return nil // site-local flush marks carry no coordinator state
	case wal.RecView:
		// Re-apply the catalog statement without re-logging it. A view
		// credits no sites/updates, so return before the accounting.
		if err := c.applyViewStatementLocked(rec.Statement); err != nil {
			return fmt.Errorf("distributed: replay seq %d: %w", rec.Seq, err)
		}
		return nil
	default:
		return fmt.Errorf("distributed: replay seq %d: unknown record type %d", rec.Seq, rec.Type)
	}
	c.sites[rec.Site]++
	c.updates += rec.Count
	return nil
}

// RecoveryStats summarizes one crash recovery.
type RecoveryStats struct {
	SnapshotSeq     uint64 // covering seq of the snapshot loaded (0 if none)
	SnapshotStreams int    // streams restored from the snapshot
	Replayed        wal.ReplayStats
}

// Recover rebuilds coordinator state from the newest loadable snapshot
// in l's directory plus the WAL suffix past it. The coordinator must
// be fresh (no traffic applied); call Recover before AttachWAL so
// replayed records are not re-logged. A missing or corrupt snapshot
// only lengthens the replay — recovery falls back to older snapshots
// and ultimately to replaying the whole log.
func (c *Coordinator) Recover(l *wal.Log) (RecoveryStats, error) {
	var rs RecoveryStats
	snap, err := wal.LoadLatestSnapshot(l.Dir(), c.log)
	if err != nil {
		return rs, err
	}
	from := uint64(1)
	if snap != nil {
		if err := c.InstallSnapshot(snap); err != nil {
			return rs, err
		}
		from = snap.Seq + 1
		rs.SnapshotSeq = snap.Seq
		rs.SnapshotStreams = len(snap.Streams)
	}
	rs.Replayed, err = l.Replay(from, c.applyWALRecord)
	if err != nil {
		return rs, err
	}
	c.log.Info("recovered",
		"snapshot_seq", rs.SnapshotSeq,
		"replayed_records", rs.Replayed.Records,
		"replayed_updates", rs.Replayed.Updates,
		"last_seq", rs.Replayed.LastSeq,
		"elapsed", rs.Replayed.Elapsed.String())
	return rs, nil
}

// InstallSnapshot replaces the coordinator's state with a snapshot's.
// The snapshot's families are adopted directly (LoadLatestSnapshot
// already deep-read them from disk); they must match the coordinator's
// stored coins.
//
//sketchvet:wal-exempt snapshot install replaces state with an already-durable image
func (c *Coordinator) InstallSnapshot(snap *wal.Snapshot) error {
	for name, fam := range snap.Streams {
		if fam.Config() != c.coins.Config || fam.Seed() != c.coins.Seed || fam.Copies() != c.coins.Copies {
			return fmt.Errorf("distributed: snapshot stream %q: %w", name, core.ErrNotAligned)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fams = make(map[string]*core.Family, len(snap.Streams))
	for name, fam := range snap.Streams {
		c.fams[name] = fam
	}
	c.sites = make(map[string]int, len(snap.Sites))
	for site, n := range snap.Sites {
		c.sites[site] = n
	}
	c.updates = snap.Updates
	// Re-register the view catalog. Window/group sketch state is NOT
	// snapshotted — views refill from the replayed WAL suffix only,
	// landing in the bucket current at replay time, and re-converge
	// over one window of live traffic (see DESIGN.md "Continuous
	// queries" for the trade-off).
	for _, stmt := range snap.Views {
		if err := c.applyViewStatementLocked(stmt); err != nil {
			return fmt.Errorf("distributed: snapshot view: %w", err)
		}
	}
	return nil
}

// WriteSnapshot writes one snapshot of the current state through the
// attached WAL and prunes segments the snapshot covers. The state is
// cloned under the read lock — appends are excluded while it is held,
// so the captured families correspond exactly to the captured covering
// sequence — and the (slow) disk write proceeds without any
// coordinator lock. A no-op when nothing was logged since the last
// snapshot.
func (c *Coordinator) WriteSnapshot() error {
	l := c.wlog
	if l == nil {
		return fmt.Errorf("distributed: no WAL attached")
	}
	c.mu.RLock()
	seq := l.LastSeq()
	updates := c.updates
	sites := make(map[string]int, len(c.sites))
	for site, n := range c.sites {
		sites[site] = n
	}
	fams := make(map[string]*core.Family, len(c.fams))
	for name, f := range c.fams {
		fams[name] = f.Clone()
	}
	views := c.cqe.Statements()
	c.mu.RUnlock()
	if seq == 0 || seq == l.LastSnapshotSeq() {
		return nil
	}
	return l.WriteSnapshot(seq, updates, sites, fams, views)
}

// Snapshotter periodically snapshots coordinator state so recovery
// replay stays short and covered WAL segments can be pruned.
type Snapshotter struct {
	c        *Coordinator
	interval time.Duration
	log      *obs.Logger
	stop     chan struct{}
	done     chan struct{}
}

// StartSnapshotter runs a snapshot loop at the given interval. A
// non-positive interval disables periodic snapshots and returns nil
// (Stop on a nil Snapshotter is a no-op); callers can still snapshot
// explicitly via Coordinator.WriteSnapshot.
func StartSnapshotter(c *Coordinator, interval time.Duration, log *obs.Logger) *Snapshotter {
	if interval <= 0 {
		return nil
	}
	s := &Snapshotter{
		c:        c,
		interval: interval,
		log:      log.Named("snapshot"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Snapshotter) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.c.WriteSnapshot(); err != nil {
				s.log.Warn("periodic snapshot failed", "err", err.Error())
			}
		}
	}
}

// Stop halts the loop and waits for an in-flight snapshot to finish.
// It does not write a final snapshot — shutdown does that explicitly
// once the server has drained.
func (s *Snapshotter) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
