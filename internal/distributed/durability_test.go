package distributed

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"setsketch/internal/core"
	"setsketch/internal/datagen"
	"setsketch/internal/hashing"
	"setsketch/internal/wal"
)

func openTestLog(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{
		Config: testCoins.Config,
		Seed:   testCoins.Seed,
		Copies: testCoins.Copies,
		Sync:   wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// requireSameState asserts two coordinators hold bit-identical merged
// state: same streams, same counters in every family, same accounting.
func requireSameState(t *testing.T, want, got *Coordinator) {
	t.Helper()
	ws, gs := want.Streams(), got.Streams()
	if strings.Join(ws, ",") != strings.Join(gs, ",") {
		t.Fatalf("streams differ: %v vs %v", ws, gs)
	}
	for _, name := range ws {
		if !want.Family(name).Equal(got.Family(name)) {
			t.Fatalf("stream %q synopsis differs after recovery", name)
		}
	}
	if want.Updates() != got.Updates() {
		t.Fatalf("updates credited: want %d, got %d", want.Updates(), got.Updates())
	}
	wp, gp := want.Pushes(), got.Pushes()
	if len(wp) != len(gp) {
		t.Fatalf("site accounting differs: %v vs %v", wp, gp)
	}
	for site, n := range wp {
		if gp[site] != n {
			t.Fatalf("site %q accounting: want %d, got %d", site, n, gp[site])
		}
	}
}

// testWorkload drives a mixed mutation sequence — raw batches (the
// digest-packed WAL path with these coins), synopsis deltas, and a
// one-shot push — through a coordinator.
func testWorkload(t *testing.T, c *Coordinator) {
	t.Helper()
	rng := hashing.NewRNG(42)
	var ups []datagen.Update
	for i := 0; i < 400; i++ {
		stream := "A"
		if i%3 == 0 {
			stream = "B"
		}
		ups = append(ups, datagen.Update{Stream: stream, Elem: rng.Uint64n(1 << 20), Delta: 1})
	}
	if err := c.ApplyUpdates("edge1", ups[:200]); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyUpdates("edge1", ups[200:]); err != nil {
		t.Fatal(err)
	}
	site, _ := NewSite("edge2", testCoins)
	for i := 0; i < 300; i++ {
		if err := site.Insert("C", rng.Uint64n(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	snap := site.Flush()
	if err := c.ApplyDelta("edge2", "C", snap["C"], 300); err != nil {
		t.Fatal(err)
	}
	oneShot, _ := testCoins.NewFamily()
	oneShot.Insert(7777)
	if err := c.Push("edge3", "A", oneShot); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorWALRecovery is the core durability property: a fresh
// coordinator recovering from the WAL alone (no snapshot, no clean
// close of the log — only fsynced appends survive, as after kill -9)
// rebuilds bit-identical state.
func TestCoordinatorWALRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, _ := NewCoordinator(testCoins)
	l1 := openTestLog(t, dir)
	c1.AttachWAL(l1)
	testWorkload(t, c1)
	// No l1.Close(): simulate a crash. SyncAlways means every acked
	// mutation is already on disk.

	c2, _ := NewCoordinator(testCoins)
	l2 := openTestLog(t, dir)
	defer l2.Close()
	rs, err := c2.Recover(l2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotSeq != 0 {
		t.Errorf("unexpected snapshot: covering seq %d", rs.SnapshotSeq)
	}
	if rs.Replayed.Records == 0 || rs.Replayed.FirstSeq != 1 {
		t.Errorf("replay stats: %+v", rs.Replayed)
	}
	requireSameState(t, c1, c2)

	// The recovered coordinator answers queries over the rebuilt state.
	e1, err := c1.Estimate("A | B | C", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Estimate("A | B | C", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Value != e2.Value {
		t.Errorf("estimates diverge after recovery: %v vs %v", e1.Value, e2.Value)
	}
	l1.Close()
}

// TestApplyUpdatesDigestPathBitIdentical pins the live non-WAL raw
// update path: with digest-packable coins, ApplyUpdates coalesces each
// batch and pays the hash bill once through the shared digest kernel
// (wal.DigestUpdates), and the resulting synopses must be
// bit-identical to per-element direct updates.
func TestApplyUpdatesDigestPathBitIdentical(t *testing.T) {
	if !testCoins.Config.DigestPackable() {
		t.Fatal("test coins must be digest-packable to cover the batched path")
	}
	c, _ := NewCoordinator(testCoins)
	g, err := datagen.NewLoadGen(datagen.LoadSpec{
		Streams: []string{"A", "B"},
		Domain:  datagen.DomainUniform,
		Support: 1 << 10,
		Theta:   1.0,
		Deletes: 0.3,
	}, hashing.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	ups := g.Updates(4096)
	want := map[string]*core.Family{}
	for _, name := range []string{"A", "B"} {
		want[name], _ = testCoins.NewFamily()
		for _, u := range ups {
			if u.Stream == name {
				want[name].Update(u.Elem, u.Delta)
			}
		}
	}
	for i := 0; i < len(ups); i += 256 {
		end := i + 256
		if end > len(ups) {
			end = len(ups)
		}
		if err := c.ApplyUpdates("site", ups[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"A", "B"} {
		if !c.Family(name).Equal(want[name]) {
			t.Errorf("stream %q: batched digest path diverges from direct updates", name)
		}
	}
	if c.Updates() != uint64(len(ups)) {
		t.Errorf("updates credited: want %d, got %d", len(ups), c.Updates())
	}
}

// TestCoordinatorSnapshotRecovery: recovery = last snapshot + WAL
// suffix. The replay must start exactly past the snapshot's covering
// sequence, and the result must be bit-identical to the uninterrupted
// coordinator.
func TestCoordinatorSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, _ := NewCoordinator(testCoins)
	l1 := openTestLog(t, dir)
	c1.AttachWAL(l1)
	testWorkload(t, c1)
	if err := c1.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	covered := l1.LastSeq()
	testWorkload(t, c1) // post-snapshot suffix to replay

	c2, _ := NewCoordinator(testCoins)
	l2 := openTestLog(t, dir)
	defer l2.Close()
	rs, err := c2.Recover(l2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotSeq != covered {
		t.Errorf("recovered from snapshot seq %d, want %d", rs.SnapshotSeq, covered)
	}
	if rs.Replayed.FirstSeq != covered+1 {
		t.Errorf("replay started at seq %d, want %d", rs.Replayed.FirstSeq, covered+1)
	}
	requireSameState(t, c1, c2)
	l1.Close()
}

// TestWALAppendFailureNotApplied is the write-ahead guarantee from the
// failure side: when the log cannot accept the record, the mutation
// must not be applied (and the frame would not be acked).
func TestWALAppendFailureNotApplied(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCoordinator(testCoins)
	l := openTestLog(t, dir)
	l.Close() // appends now fail
	c.AttachWAL(l)

	err := c.ApplyUpdates("s", []datagen.Update{{Stream: "A", Elem: 1, Delta: 1}})
	if err == nil {
		t.Fatal("ApplyUpdates succeeded against a closed WAL")
	}
	fam, _ := testCoins.NewFamily()
	fam.Insert(1)
	if err := c.ApplyDelta("s", "A", fam, 1); err == nil {
		t.Fatal("ApplyDelta succeeded against a closed WAL")
	}
	if got := c.Updates(); got != 0 {
		t.Errorf("updates credited despite append failure: %d", got)
	}
	if streams := c.Streams(); len(streams) != 0 {
		t.Errorf("streams materialized despite append failure: %v", streams)
	}
}

// TestSnapshotterLoop: the periodic snapshotter writes a snapshot soon
// after mutations land, and skips rounds when nothing new was logged.
func TestSnapshotterLoop(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCoordinator(testCoins)
	l := openTestLog(t, dir)
	defer l.Close()
	c.AttachWAL(l)
	s := StartSnapshotter(c, 10*time.Millisecond, nil)
	defer s.Stop()
	if err := c.ApplyUpdates("s", []datagen.Update{{Stream: "A", Elem: 9, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.LastSnapshotSeq() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshotter never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := l.LastSnapshotSeq(); got != l.LastSeq() {
		t.Errorf("snapshot covers seq %d, last appended is %d", got, l.LastSeq())
	}
	// Nil snapshotter (interval <= 0) is inert and Stop-safe.
	var nilSnap *Snapshotter = StartSnapshotter(c, 0, nil)
	nilSnap.Stop()
}

// TestServerCloseDrainsSessions: closing the server with open
// streaming sessions — one idle, one sending — returns promptly
// (no waiting out IdleTimeout) and never tears a dispatch mid-flight:
// every batch either errors at the client or is fully applied.
func TestServerCloseDrainsSessions(t *testing.T) {
	coord, _ := NewCoordinator(testCoins)
	srv := NewServer(coord)
	srv.IdleTimeout = time.Hour // drain must not wait this out
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	idle, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, err := idle.OpenStream("idle", testCoins); err != nil {
		t.Fatal(err)
	}

	busy, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	sess, err := busy.OpenStream("busy", testCoins)
	if err != nil {
		t.Fatal(err)
	}
	var acked uint64
	var mu sync.Mutex
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := uint64(0); ; i++ {
			n, err := sess.SendUpdates([]datagen.Update{{Stream: "A", Elem: i, Delta: 1}})
			if err != nil {
				return
			}
			mu.Lock()
			acked = n
			mu.Unlock()
		}
	}()

	time.Sleep(20 * time.Millisecond) // let some batches through
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Close took %v with an idle session open", elapsed)
	}
	<-senderDone
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := coord.Updates(); got < acked {
		t.Errorf("coordinator credited %d updates, but %d were acked", got, acked)
	}
}
