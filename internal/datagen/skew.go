package datagen

import (
	"fmt"

	"setsketch/internal/hashing"
)

// Skewed element-domain generators. The paper's study draws elements
// uniformly from [2^32] (§5.1); real streams are nastier — sequential
// identifiers, clustered subnets, heavy-hitter multiplicities. The
// estimators' guarantees depend only on the hash functions, so their
// accuracy must be unchanged under any domain shape; the skew ablation
// (cmd/experiments -fig skew) verifies that.

// Domain selects how distinct element values are laid out.
type Domain int

const (
	// DomainUniform draws uniformly from [2^32] (the paper's setting).
	DomainUniform Domain = iota
	// DomainSequential uses consecutive integers starting at a random
	// base — the classic adversary for weak (e.g. low-bit) hashing.
	DomainSequential
	// DomainClustered draws from a few dense blocks (e.g. IP subnets):
	// high low-bit correlation within each block.
	DomainClustered
	// DomainStrided uses an arithmetic progression with a large even
	// stride, so low bits of raw values are constant.
	DomainStrided
)

// String names the domain for reports.
func (d Domain) String() string {
	switch d {
	case DomainUniform:
		return "uniform"
	case DomainSequential:
		return "sequential"
	case DomainClustered:
		return "clustered"
	case DomainStrided:
		return "strided"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Domains lists all element-domain shapes.
func Domains() []Domain {
	return []Domain{DomainUniform, DomainSequential, DomainClustered, DomainStrided}
}

// Elements generates n distinct elements with the given domain shape.
func Elements(d Domain, n int, rng *hashing.RNG) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("datagen: negative element count %d", n)
	}
	out := make([]uint64, 0, n)
	switch d {
	case DomainUniform:
		seen := make(map[uint64]struct{}, n)
		for len(out) < n {
			e := rng.Uint64n(1 << 32)
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
	case DomainSequential:
		base := rng.Uint64n(1 << 31)
		for i := 0; i < n; i++ {
			out = append(out, base+uint64(i))
		}
	case DomainClustered:
		// 16 dense blocks ("/20 subnets"): base + offset < 4096 each.
		blocks := make([]uint64, 16)
		for i := range blocks {
			blocks[i] = rng.Uint64n(1<<32) &^ 0xfff
		}
		seen := make(map[uint64]struct{}, n)
		for len(out) < n {
			e := blocks[rng.Intn(len(blocks))] + rng.Uint64n(1<<12)
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
	case DomainStrided:
		base := rng.Uint64n(1 << 20)
		const stride = 4096 // low 12 bits of every element identical
		for i := 0; i < n; i++ {
			out = append(out, base+uint64(i)*stride)
		}
	default:
		return nil, fmt.Errorf("datagen: unknown domain %v", d)
	}
	return out, nil
}

// ZipfStream draws n stream elements i.i.d. from a Zipf(theta)
// frequency law over a support of `support` distinct elements laid out
// by domain d: rank i (0-based) is drawn with probability proportional
// to 1/(i+1)^theta. theta = 1.0 is the classic web/caching skew — the
// hot few elements dominate the update volume, which is exactly the
// regime the ingest engine's digest cache and batch coalescing exploit.
// The returned slice is an update stream (repeats expected), not an
// element set.
func ZipfStream(d Domain, support, n int, theta float64, rng *hashing.RNG) ([]uint64, error) {
	z, err := newZipfSampler(d, support, theta, rng)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.draw(rng)
	}
	return out, nil
}

// SkewedOverlap builds two streams over a skewed domain with exact
// |A ∪ B| = u and |A ∩ B| = inter (elements outside the intersection
// alternate between A and B). It also returns Zipf-like multiplicities
// for rendering heavy-hitter update streams: element i gets
// ⌈u/(i+1)⌉ insertions capped at 64, so a few elements dominate the
// update volume without changing any distinct count.
func SkewedOverlap(d Domain, u, inter int, rng *hashing.RNG) (a, b []uint64, mult []int64, err error) {
	if inter > u || inter < 0 {
		return nil, nil, nil, fmt.Errorf("datagen: intersection %d out of [0, %d]", inter, u)
	}
	elems, err := Elements(d, u, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	mult = make([]int64, u)
	for i := range elems {
		m := int64(u/(i+1)) + 1
		if m > 64 {
			m = 64
		}
		mult[i] = m
		switch {
		case i < inter:
			a = append(a, elems[i])
			b = append(b, elems[i])
		case i%2 == 0:
			a = append(a, elems[i])
		default:
			b = append(b, elems[i])
		}
	}
	return a, b, mult, nil
}
