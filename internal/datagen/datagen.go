// Package datagen implements the synthetic-data methodology of the
// paper's experimental study (§5.1): controlled generation of n input
// streams with a fixed union cardinality u and a target cardinality e
// for a given set expression E, by assigning elements to the 2ⁿ−1
// partitions of the streams' Venn diagram with calibrated
// probabilities; plus rendering of the resulting multi-sets as update
// streams, optionally with deletion churn that leaves the net
// multi-sets unchanged (to exercise the sketches' deletion-invariance).
package datagen

import (
	"fmt"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
)

// Workload is the generated input for one experiment run: the elements
// of each stream and the exact cardinalities the estimators are judged
// against.
type Workload struct {
	// Streams maps stream names to their distinct elements.
	Streams map[string][]uint64
	// UnionSize is the exact |∪_i A_i|.
	UnionSize int
	// TargetSize is the exact |E| achieved (the generator randomizes, so
	// this is close to, not exactly, the requested target).
	TargetSize int
}

// Spec describes a controlled workload in the paper's terms.
type Spec struct {
	// Expr is the set expression E whose cardinality is being targeted.
	Expr expr.Node
	// Union is u, the number of distinct elements in ∪_i A_i
	// (§5.1 fixes u ≈ 2^18; tests and quick experiments scale it down).
	Union int
	// Target is e, the desired |E|. Must satisfy 0 ≤ Target ≤ Union.
	Target int
	// Balance, when true, runs an iterative reweighting pass so all
	// streams have (approximately) equal expected sizes, as §5.1
	// prescribes ("the probabilities are chosen so that all underlying
	// sets have the same expected size").
	Balance bool
}

// partition is one cell of the Venn diagram: a non-empty subset of the
// streams, encoded as a bitmask over the sorted stream names.
type partition struct {
	mask uint
	inE  bool
	prob float64
}

// Generate produces a workload per §5.1: it draws u distinct random
// 32-bit elements and assigns each to one Venn partition, chosen with
// probabilities that put mass ≈ Target/Union on the partitions
// comprising E.
func Generate(spec Spec, rng *hashing.RNG) (*Workload, error) {
	names := expr.Streams(spec.Expr)
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("datagen: expression references no streams")
	}
	if n > 16 {
		return nil, fmt.Errorf("datagen: %d streams exceed the 2^n−1 partition budget", n)
	}
	if spec.Union <= 0 {
		return nil, fmt.Errorf("datagen: union size %d must be positive", spec.Union)
	}
	if spec.Target < 0 || spec.Target > spec.Union {
		return nil, fmt.Errorf("datagen: target %d out of [0, %d]", spec.Target, spec.Union)
	}

	parts, err := buildPartitions(spec, names)
	if err != nil {
		return nil, err
	}

	// Step 1 (§5.1): generate u distinct random 32-bit unsigned
	// integers. The paper generates 2^18 raws and deduplicates, so "the
	// actual union size u can be slightly less"; we draw until exactly
	// u distinct values for tighter control — the estimators only ever
	// see the distinct multiset either way.
	seen := make(map[uint64]struct{}, spec.Union)
	elements := make([]uint64, 0, spec.Union)
	for len(elements) < spec.Union {
		e := rng.Uint64n(1 << 32)
		if _, dup := seen[e]; !dup {
			seen[e] = struct{}{}
			elements = append(elements, e)
		}
	}

	// Step 2: assign each element to a partition by its probability.
	w := &Workload{Streams: make(map[string][]uint64, n), UnionSize: spec.Union}
	for _, name := range names {
		w.Streams[name] = nil
	}
	cum := make([]float64, len(parts))
	acc := 0.0
	for i, p := range parts {
		acc += p.prob
		cum[i] = acc
	}
	for _, e := range elements {
		x := rng.Float64() * acc
		k := 0
		for k < len(cum)-1 && x > cum[k] {
			k++
		}
		p := parts[k]
		for bit, name := range names {
			if p.mask&(1<<uint(bit)) != 0 {
				w.Streams[name] = append(w.Streams[name], e)
			}
		}
		if p.inE {
			w.TargetSize++
		}
	}
	return w, nil
}

// buildPartitions enumerates the 2^n−1 non-empty Venn partitions,
// classifies each by membership in E (evaluating E element-wise via the
// Boolean mapping), and assigns probabilities: mass Target/Union spread
// over the E-partitions and the remainder over the rest, then an
// optional balancing pass to equalize expected stream sizes.
func buildPartitions(spec Spec, names []string) ([]partition, error) {
	n := len(names)
	ratio := float64(spec.Target) / float64(spec.Union)
	var inE, notE []partition
	membership := make(map[string]bool, n)
	for mask := uint(1); mask < 1<<uint(n); mask++ {
		for bit, name := range names {
			membership[name] = mask&(1<<uint(bit)) != 0
		}
		p := partition{mask: mask, inE: expr.Member(spec.Expr, membership)}
		if p.inE {
			inE = append(inE, p)
		} else {
			notE = append(notE, p)
		}
	}
	if len(inE) == 0 && spec.Target > 0 {
		return nil, fmt.Errorf("datagen: expression %s is unsatisfiable, cannot target |E| = %d",
			spec.Expr.String(), spec.Target)
	}
	if len(notE) == 0 && spec.Target < spec.Union {
		return nil, fmt.Errorf("datagen: expression %s is a tautology over its streams, cannot target |E| = %d < u",
			spec.Expr.String(), spec.Target)
	}
	for i := range inE {
		inE[i].prob = ratio / float64(len(inE))
	}
	for i := range notE {
		notE[i].prob = (1 - ratio) / float64(len(notE))
	}
	parts := append(inE, notE...)
	if spec.Balance {
		balance(parts, n, ratio)
	}
	return parts, nil
}

// balance reweights partition probabilities so every stream has (about)
// the same expected size, holding the total E-mass and non-E-mass
// fixed. It runs a small number of multiplicative-update rounds
// (iterative proportional fitting): streams above the mean size have
// their exclusive partitions damped, those below boosted.
func balance(parts []partition, n int, ratio float64) {
	const rounds = 60
	for round := 0; round < rounds; round++ {
		size := make([]float64, n)
		for _, p := range parts {
			for bit := 0; bit < n; bit++ {
				if p.mask&(1<<uint(bit)) != 0 {
					size[bit] += p.prob
				}
			}
		}
		mean := 0.0
		for _, s := range size {
			mean += s
		}
		mean /= float64(n)
		if mean == 0 {
			return
		}
		for i := range parts {
			adj := 1.0
			for bit := 0; bit < n; bit++ {
				if parts[i].mask&(1<<uint(bit)) != 0 && size[bit] > 0 {
					adj *= mean / size[bit]
				}
			}
			// Dampen the step to keep the fit stable.
			parts[i].prob *= 1 + 0.5*(adj-1)
			if parts[i].prob < 0 {
				parts[i].prob = 0
			}
		}
		renormalize(parts, true, ratio)
		renormalize(parts, false, 1-ratio)
	}
}

// renormalize rescales the probabilities of the partitions with the
// given E-membership so they sum to mass.
func renormalize(parts []partition, inE bool, mass float64) {
	var sum float64
	for _, p := range parts {
		if p.inE == inE {
			sum += p.prob
		}
	}
	if sum == 0 {
		return
	}
	for i := range parts {
		if parts[i].inE == inE {
			parts[i].prob *= mass / sum
		}
	}
}

// Binary builds the §5.1 binary-operator workload directly: for each of
// u distinct elements, with probability e/u insert it into the
// operator-defining partition, else into one of the remaining
// partitions with equal probability. op must reference exactly the two
// streams "A" and "B".
func Binary(op expr.Op, union, target int, rng *hashing.RNG) (*Workload, error) {
	node := &expr.Binary{Op: op, L: &expr.Stream{Name: "A"}, R: &expr.Stream{Name: "B"}}
	return Generate(Spec{Expr: node, Union: union, Target: target, Balance: true}, rng)
}
