package datagen

import (
	"math"
	"testing"

	"setsketch/internal/expr"
	"setsketch/internal/hashing"
	"setsketch/internal/multiset"
)

// exactCardinality evaluates |E| exactly over a workload.
func exactCardinality(t *testing.T, w *Workload, e expr.Node) int {
	t.Helper()
	sets := make(map[string]multiset.Set, len(w.Streams))
	for name, elems := range w.Streams {
		s := make(multiset.Set, len(elems))
		for _, el := range elems {
			s[el] = struct{}{}
		}
		sets[name] = s
	}
	return len(e.EvalSet(sets))
}

func unionCardinality(w *Workload) int {
	u := make(map[uint64]struct{})
	for _, elems := range w.Streams {
		for _, e := range elems {
			u[e] = struct{}{}
		}
	}
	return len(u)
}

func TestBinaryIntersectionTargets(t *testing.T) {
	rng := hashing.NewRNG(1)
	const u = 8192
	for _, target := range []int{u / 2, u / 8, u / 32} {
		w, err := Binary(expr.Intersect, u, target, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := unionCardinality(w); got != u {
			t.Errorf("target %d: union = %d, want %d", target, got, u)
		}
		exact := exactCardinality(t, w, expr.MustParse("A & B"))
		if exact != w.TargetSize {
			t.Errorf("target %d: TargetSize %d disagrees with exact %d", target, w.TargetSize, exact)
		}
		// Binomial concentration: |exact − target| ≤ 5σ, σ ≤ √target.
		if math.Abs(float64(exact-target)) > 5*math.Sqrt(float64(target))+5 {
			t.Errorf("target %d: achieved %d, too far off", target, exact)
		}
	}
}

func TestBinaryDifferenceTargets(t *testing.T) {
	rng := hashing.NewRNG(2)
	const u = 8192
	for _, target := range []int{u / 4, u / 16} {
		w, err := Binary(expr.Diff, u, target, rng)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactCardinality(t, w, expr.MustParse("A - B"))
		if math.Abs(float64(exact-target)) > 5*math.Sqrt(float64(target))+5 {
			t.Errorf("target %d: achieved %d", target, exact)
		}
	}
}

func TestBinaryBalanced(t *testing.T) {
	// §5.1: "about equal numbers of elements in both A and B".
	rng := hashing.NewRNG(3)
	w, err := Binary(expr.Intersect, 8192, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := len(w.Streams["A"]), len(w.Streams["B"])
	if math.Abs(float64(na-nb)) > 0.15*float64(na) {
		t.Errorf("unbalanced streams: |A| = %d, |B| = %d", na, nb)
	}
}

func TestGenerateThreeStreamExpression(t *testing.T) {
	rng := hashing.NewRNG(4)
	node := expr.MustParse("(A - B) & C")
	const u = 8192
	for _, target := range []int{u / 4, u / 16} {
		w, err := Generate(Spec{Expr: node, Union: u, Target: target, Balance: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactCardinality(t, w, node)
		if math.Abs(float64(exact-target)) > 5*math.Sqrt(float64(target))+5 {
			t.Errorf("target %d: achieved %d", target, exact)
		}
		// Balancing: all three streams about the same size.
		sizes := []int{len(w.Streams["A"]), len(w.Streams["B"]), len(w.Streams["C"])}
		minS, maxS := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		if float64(maxS-minS) > 0.3*float64(maxS) {
			t.Errorf("target %d: stream sizes %v not balanced", target, sizes)
		}
	}
}

func TestGenerateExtremeTargets(t *testing.T) {
	rng := hashing.NewRNG(5)
	node := expr.MustParse("A & B")
	// Target 0: intersection empty.
	w, err := Generate(Spec{Expr: node, Union: 1000, Target: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := exactCardinality(t, w, node); got != 0 {
		t.Errorf("target 0 achieved %d", got)
	}
	// Target = union: everything shared.
	w, err = Generate(Spec{Expr: node, Union: 1000, Target: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := exactCardinality(t, w, node); got != 1000 {
		t.Errorf("target u achieved %d", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := hashing.NewRNG(6)
	node := expr.MustParse("A & B")
	cases := []Spec{
		{Expr: node, Union: 0, Target: 0},
		{Expr: node, Union: 100, Target: -1},
		{Expr: node, Union: 100, Target: 101},
		// A − A is unsatisfiable: no Venn partition is in E.
		{Expr: expr.MustParse("A - A"), Union: 100, Target: 10},
		// A ∪ A is a tautology over {A}: cannot target below u.
		{Expr: expr.MustParse("A | A"), Union: 100, Target: 10},
	}
	for _, spec := range cases {
		if _, err := Generate(spec, rng); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	// Unsatisfiable expression with target 0 is fine.
	if _, err := Generate(Spec{Expr: expr.MustParse("A - A"), Union: 100, Target: 0}, rng); err != nil {
		t.Errorf("A − A with target 0 rejected: %v", err)
	}
}

func TestElementsAreDistinct(t *testing.T) {
	rng := hashing.NewRNG(7)
	w, err := Binary(expr.Union, 4096, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, elems := range w.Streams {
		seen := make(map[uint64]bool, len(elems))
		for _, e := range elems {
			if seen[e] {
				t.Fatalf("stream %s contains duplicate element %d", name, e)
			}
			seen[e] = true
		}
	}
}

func TestRenderUpdatesNetEffect(t *testing.T) {
	rng := hashing.NewRNG(8)
	w, err := Binary(expr.Intersect, 2048, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, churn := range []ChurnSpec{
		{},
		{Phantoms: 0.5},
		{Overcount: 0.5},
		{Phantoms: 1.0, Overcount: 1.0},
	} {
		ups, err := RenderUpdates(w, churn, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Replay against exact multisets; every prefix must be legal.
		ms := map[string]*multiset.Multiset{
			"A": multiset.New(), "B": multiset.New(),
		}
		for i, u := range ups {
			if err := ms[u.Stream].Update(u.Elem, u.Delta); err != nil {
				t.Fatalf("churn %+v: illegal update at position %d: %v", churn, i, err)
			}
		}
		// Net effect: exactly the workload, each element once.
		for name, elems := range w.Streams {
			if got := ms[name].Distinct(); got != len(elems) {
				t.Errorf("churn %+v: stream %s has %d distinct, want %d", churn, name, got, len(elems))
			}
			for _, e := range elems {
				if ms[name].Count(e) != 1 {
					t.Errorf("churn %+v: element %d count %d, want 1", churn, e, ms[name].Count(e))
				}
			}
			if ms[name].Total() != int64(len(elems)) {
				t.Errorf("churn %+v: stream %s total %d, want %d (phantoms not fully deleted?)",
					churn, name, ms[name].Total(), len(elems))
			}
		}
	}
}

func TestRenderUpdatesChurnAddsDeletions(t *testing.T) {
	rng := hashing.NewRNG(9)
	w, err := Binary(expr.Union, 1024, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	ups, err := RenderUpdates(w, ChurnSpec{Phantoms: 1.0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	deletions := 0
	for _, u := range ups {
		if u.Delta < 0 {
			deletions++
		}
	}
	if deletions == 0 {
		t.Fatal("churned stream contains no deletions")
	}
	if _, err := RenderUpdates(w, ChurnSpec{Phantoms: -1}, rng); err == nil {
		t.Error("negative churn accepted")
	}
}

func TestGenerateXorWorkload(t *testing.T) {
	rng := hashing.NewRNG(10)
	node := expr.MustParse("A ^ B")
	const u, target = 4096, 1024
	w, err := Generate(Spec{Expr: node, Union: u, Target: target, Balance: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactCardinality(t, w, node)
	if math.Abs(float64(exact-target)) > 5*math.Sqrt(float64(target))+5 {
		t.Errorf("xor target %d: achieved %d", target, exact)
	}
}

func TestGenerateTooManyStreams(t *testing.T) {
	// Build an expression over 17 streams.
	var node expr.Node = &expr.Stream{Name: "s00"}
	for i := 1; i < 17; i++ {
		node = &expr.Binary{Op: expr.Union, L: node, R: &expr.Stream{Name: string(rune('a'+i)) + "x"}}
	}
	if _, err := Generate(Spec{Expr: node, Union: 10, Target: 5}, hashing.NewRNG(1)); err == nil {
		t.Error("17-stream expression accepted")
	}
}
