package datagen

import (
	"fmt"
	"sort"

	"setsketch/internal/hashing"
)

// Update is one element of an update stream: the triple ⟨i, e, ±v⟩ of
// the paper's model (§2.1), with the stream identified by name.
type Update struct {
	Stream string
	Elem   uint64
	Delta  int64 // positive: insertions; negative: deletions
}

// ChurnSpec controls how a distinct-element workload is rendered as an
// update stream with deletions. The churn leaves the net multi-set
// unchanged, so any correct update-stream synopsis must produce the
// same estimate at every churn level — the paper's §3.1
// deletion-invariance claim, made testable.
type ChurnSpec struct {
	// Phantoms is the ratio of extra elements (not in the workload)
	// that are inserted and later fully deleted, relative to the
	// workload size. 0 disables phantom churn; 1.0 injects one phantom
	// insert+delete pair per real element.
	Phantoms float64
	// Overcount is the ratio of real elements that are inserted with
	// multiplicity 3 and then deleted back down to 1 (partial
	// deletions). 0 disables.
	Overcount float64
	// PhantomDomainOffset keeps phantom element IDs disjoint from the
	// real domain; phantoms are drawn from [offset, offset + 2^32).
	PhantomDomainOffset uint64
}

// RenderUpdates converts a workload into a single interleaved update
// stream covering all of the workload's streams, applying churn and
// shuffling the result. The net effect of the returned updates is
// exactly one insertion of each workload element into its streams.
func RenderUpdates(w *Workload, churn ChurnSpec, rng *hashing.RNG) ([]Update, error) {
	if churn.Phantoms < 0 || churn.Overcount < 0 {
		return nil, fmt.Errorf("datagen: negative churn ratios %+v", churn)
	}
	offset := churn.PhantomDomainOffset
	if offset == 0 {
		offset = 1 << 40
	}
	// Iterate streams in sorted-name order: map order would make the
	// output depend on Go's per-process map seed, breaking the
	// same-seed-same-stream contract.
	names := make([]string, 0, len(w.Streams))
	for name := range w.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	var ups []Update
	for _, name := range names {
		elems := w.Streams[name]
		for _, e := range elems {
			if churn.Overcount > 0 && rng.Float64() < churn.Overcount {
				// ⟨+3⟩ then ⟨−2⟩: net one insertion, with a partial
				// deletion along the way.
				ups = append(ups,
					Update{Stream: name, Elem: e, Delta: 3},
					Update{Stream: name, Elem: e, Delta: -2})
			} else {
				ups = append(ups, Update{Stream: name, Elem: e, Delta: 1})
			}
		}
		phantoms := int(churn.Phantoms * float64(len(elems)))
		for i := 0; i < phantoms; i++ {
			e := offset + rng.Uint64n(1<<32)
			ups = append(ups,
				Update{Stream: name, Elem: e, Delta: 2},
				Update{Stream: name, Elem: e, Delta: -2})
		}
	}
	// Shuffle while preserving legality: a deletion must not precede
	// its insertion. Pairs above were appended insert-before-delete;
	// a Fisher–Yates shuffle could reorder them, so instead shuffle
	// insert positions and attach each deletion a random distance
	// *after* its insert.
	return legalShuffle(ups, rng), nil
}

// legalShuffle permutes updates uniformly among orderings that keep
// every prefix legal (no element's net frequency ever negative). It
// shuffles all updates, then repairs illegal prefixes by a stable pass
// that defers deletions until their inserts have appeared.
func legalShuffle(ups []Update, rng *hashing.RNG) []Update {
	perm := rng.Perm(len(ups))
	shuffled := make([]Update, len(ups))
	for i, p := range perm {
		shuffled[i] = ups[p]
	}
	// Repair: scan, maintaining net frequencies; an update that would
	// go negative is deferred to a pending queue flushed as soon as its
	// element has enough mass.
	type key struct {
		stream string
		elem   uint64
	}
	net := make(map[key]int64)
	var out []Update
	pending := make(map[key][]Update)
	for _, u := range shuffled {
		k := key{u.Stream, u.Elem}
		if net[k]+u.Delta < 0 {
			pending[k] = append(pending[k], u)
			continue
		}
		net[k] += u.Delta
		out = append(out, u)
		// Flush any pending deletions now legal for this element.
		q := pending[k]
		for len(q) > 0 && net[k]+q[0].Delta >= 0 {
			net[k] += q[0].Delta
			out = append(out, q[0])
			q = q[1:]
		}
		if len(q) == 0 {
			delete(pending, k)
		} else {
			pending[k] = q
		}
	}
	// Any still-pending updates are flushed at the end (cannot happen
	// for the generators above, which always emit net-non-negative
	// multisets, but keeps the function total).
	for _, q := range pending {
		out = append(out, q...)
	}
	return out
}
