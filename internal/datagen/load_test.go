package datagen

import (
	"testing"

	"setsketch/internal/hashing"
)

func testLoadSpec() LoadSpec {
	return LoadSpec{
		Streams: []string{"A", "B", "C"},
		Domain:  DomainUniform,
		Support: 1 << 10,
		Theta:   1.0,
		Deletes: 0.3,
	}
}

// TestLoadGenLegal drives the generator hard and checks the strict
// update model of §2.1: no prefix of the emitted stream takes any
// (stream, element) net frequency negative, every delta is ±1, and the
// generator's Live() matches an independent recount.
func TestLoadGenLegal(t *testing.T) {
	g, err := NewLoadGen(testLoadSpec(), hashing.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	net := make(map[liveKey]int64)
	deletions := 0
	for i := 0; i < 200000; i++ {
		u := g.Next()
		if u.Delta != 1 && u.Delta != -1 {
			t.Fatalf("update %d: delta %d, want ±1", i, u.Delta)
		}
		if u.Delta < 0 {
			deletions++
		}
		k := liveKey{u.Stream, u.Elem}
		net[k] += u.Delta
		if net[k] < 0 {
			t.Fatalf("update %d: net frequency of %v went negative", i, k)
		}
	}
	live := 0
	for _, n := range net {
		if n > 0 {
			live++
		}
	}
	if live != g.Live() {
		t.Fatalf("Live() = %d, recount = %d", g.Live(), live)
	}
	// With a warm live set the delete ratio should be roughly honored.
	if deletions < 40000 || deletions > 80000 {
		t.Fatalf("deletions = %d of 200000, want ≈ 60000", deletions)
	}
}

// TestLoadGenDeterministic: same spec and seed, same stream.
func TestLoadGenDeterministic(t *testing.T) {
	mk := func() []Update {
		g, err := NewLoadGen(testLoadSpec(), hashing.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return g.Updates(5000)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("update %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLoadGenSkew: under Zipf(1.0) the update volume concentrates on
// few elements — far fewer distinct elements than updates.
func TestLoadGenSkew(t *testing.T) {
	spec := testLoadSpec()
	spec.Deletes = 0
	g, err := NewLoadGen(spec, hashing.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]struct{})
	const n = 1 << 14
	for i := 0; i < n; i++ {
		seen[g.Next().Elem] = struct{}{}
	}
	if len(seen) > n/3 {
		t.Fatalf("Zipf(1.0): %d distinct elements in %d updates, want heavy repetition", len(seen), n)
	}
}

// TestLoadGenValidation rejects bad specs.
func TestLoadGenValidation(t *testing.T) {
	rng := hashing.NewRNG(1)
	for _, spec := range []LoadSpec{
		{Streams: nil, Support: 8},
		{Streams: []string{""}, Support: 8},
		{Streams: []string{"A"}, Support: 0},
		{Streams: []string{"A"}, Support: 8, Theta: -1},
		{Streams: []string{"A"}, Support: 8, Deletes: 1.5},
		{Streams: []string{"A"}, Support: 8, Deletes: -0.1},
	} {
		if _, err := NewLoadGen(spec, rng); err == nil {
			t.Errorf("NewLoadGen(%+v) accepted a bad spec", spec)
		}
	}
}

// TestLoadGenDeleteOnly: Deletes = 1 still makes progress (inserts when
// nothing is live) and never goes negative.
func TestLoadGenDeleteOnly(t *testing.T) {
	spec := testLoadSpec()
	spec.Deletes = 1
	g, err := NewLoadGen(spec, hashing.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	net := make(map[liveKey]int64)
	for i := 0; i < 10000; i++ {
		u := g.Next()
		k := liveKey{u.Stream, u.Elem}
		net[k] += u.Delta
		if net[k] < 0 {
			t.Fatalf("update %d: net frequency of %v went negative", i, k)
		}
	}
	if g.Live() > 1 {
		t.Fatalf("delete-only load keeps %d live pairs, want ≤ 1", g.Live())
	}
}
