package datagen

import (
	"fmt"
	"math"
	"sort"

	"setsketch/internal/hashing"
)

// Continuous load generation: the one workload definition shared by the
// benchmarks. cmd/sketchbench, cmd/streamgen -updates, and the ingest
// benchmarks in bench_test.go all draw from a LoadGen, so "Zipf(1.0)
// over 2^14 elements with 10% deletions" means exactly the same update
// stream everywhere a number is reported.

// zipfSampler draws elements i.i.d. from a Zipf(theta) frequency law
// over a fixed support, by inverse-CDF search over precomputed
// cumulative weights. It is the sampling core behind ZipfStream and
// LoadGen.
type zipfSampler struct {
	elems []uint64
	cum   []float64
	total float64
}

func newZipfSampler(d Domain, support int, theta float64, rng *hashing.RNG) (*zipfSampler, error) {
	if support < 1 {
		return nil, fmt.Errorf("datagen: Zipf support %d < 1", support)
	}
	if theta < 0 {
		return nil, fmt.Errorf("datagen: Zipf skew %g < 0", theta)
	}
	elems, err := Elements(d, support, rng)
	if err != nil {
		return nil, err
	}
	z := &zipfSampler{elems: elems, cum: make([]float64, support)}
	for i := range z.cum {
		z.total += 1 / math.Pow(float64(i+1), theta)
		z.cum[i] = z.total
	}
	return z, nil
}

// draw samples one element; rank i (0-based) is drawn with probability
// proportional to 1/(i+1)^theta.
func (z *zipfSampler) draw(rng *hashing.RNG) uint64 {
	j := sort.SearchFloat64s(z.cum, rng.Float64()*z.total)
	if j >= len(z.elems) {
		j = len(z.elems) - 1
	}
	return z.elems[j]
}

// LoadSpec configures a continuous synthetic load.
type LoadSpec struct {
	// Streams are the stream names insertions rotate through. Must be
	// non-empty.
	Streams []string
	// Domain shapes the element values (DomainUniform is the paper's
	// setting).
	Domain Domain
	// Support is the number of distinct elements insertions draw from.
	Support int
	// Theta is the Zipf skew over the support; 0 is uniform, 1.0 the
	// classic web/caching skew.
	Theta float64
	// Deletes in [0, 1] is the fraction of updates that are deletions.
	// Deletions always target an element with positive net frequency
	// (the paper's §2.1 strict-update model: no prefix of the stream
	// drives any frequency negative), so when nothing is live an
	// insertion is emitted instead.
	Deletes float64
}

// liveKey identifies a (stream, element) pair with positive net
// frequency.
type liveKey struct {
	stream string
	elem   uint64
}

// LoadGen emits an endless update stream matching a LoadSpec. The
// sequence is a deterministic function of the spec and the RNG seed.
// It tracks net frequencies so deletions are always legal; state is
// bounded by |Streams| × Support.
type LoadGen struct {
	spec LoadSpec
	rng  *hashing.RNG
	zipf *zipfSampler
	n    uint64 // updates emitted, drives stream rotation

	net  map[liveKey]int64 // positive net frequencies
	pos  map[liveKey]int   // index of each live key in keys
	keys []liveKey         // live keys, for O(1) uniform choice
}

// NewLoadGen validates spec and builds a generator drawing randomness
// from rng (which also lays out the element support).
func NewLoadGen(spec LoadSpec, rng *hashing.RNG) (*LoadGen, error) {
	if len(spec.Streams) == 0 {
		return nil, fmt.Errorf("datagen: load spec has no streams")
	}
	for _, s := range spec.Streams {
		if s == "" {
			return nil, fmt.Errorf("datagen: empty stream name in load spec")
		}
	}
	if spec.Deletes < 0 || spec.Deletes > 1 {
		return nil, fmt.Errorf("datagen: delete ratio %g outside [0, 1]", spec.Deletes)
	}
	z, err := newZipfSampler(spec.Domain, spec.Support, spec.Theta, rng)
	if err != nil {
		return nil, err
	}
	return &LoadGen{
		spec: spec,
		rng:  rng,
		zipf: z,
		net:  make(map[liveKey]int64),
		pos:  make(map[liveKey]int),
	}, nil
}

// Next emits the next update of the stream.
func (g *LoadGen) Next() Update {
	g.n++
	if g.spec.Deletes > 0 && len(g.keys) > 0 && g.rng.Float64() < g.spec.Deletes {
		k := g.keys[g.rng.Intn(len(g.keys))]
		g.net[k]--
		if g.net[k] == 0 {
			g.dropLive(k)
		}
		return Update{Stream: k.stream, Elem: k.elem, Delta: -1}
	}
	k := liveKey{
		stream: g.spec.Streams[g.n%uint64(len(g.spec.Streams))],
		elem:   g.zipf.draw(g.rng),
	}
	if g.net[k] == 0 {
		g.pos[k] = len(g.keys)
		g.keys = append(g.keys, k)
	}
	g.net[k]++
	return Update{Stream: k.stream, Elem: k.elem, Delta: 1}
}

// dropLive removes k from the live-key slice by swapping the last key
// into its slot.
func (g *LoadGen) dropLive(k liveKey) {
	i := g.pos[k]
	last := len(g.keys) - 1
	g.keys[i] = g.keys[last]
	g.pos[g.keys[i]] = i
	g.keys = g.keys[:last]
	delete(g.pos, k)
	delete(g.net, k)
}

// Fill overwrites ups with the next len(ups) updates — the batch form
// for hot loops that reuse one slice.
func (g *LoadGen) Fill(ups []Update) {
	for i := range ups {
		ups[i] = g.Next()
	}
}

// Updates returns the next n updates as a fresh slice.
func (g *LoadGen) Updates(n int) []Update {
	ups := make([]Update, n)
	g.Fill(ups)
	return ups
}

// Live reports the number of (stream, element) pairs with positive net
// frequency — the exact distinct count of the stream so far, for
// accuracy checks against estimates.
func (g *LoadGen) Live() int { return len(g.keys) }
