package datagen

import (
	"testing"

	"setsketch/internal/hashing"
)

func TestElementsDistinctAndSized(t *testing.T) {
	rng := hashing.NewRNG(1)
	for _, d := range Domains() {
		elems, err := Elements(d, 5000, rng)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(elems) != 5000 {
			t.Fatalf("%v: got %d elements", d, len(elems))
		}
		seen := make(map[uint64]bool, len(elems))
		for _, e := range elems {
			if seen[e] {
				t.Fatalf("%v: duplicate element %d", d, e)
			}
			seen[e] = true
		}
		if d.String() == "" {
			t.Errorf("%v: empty name", d)
		}
	}
	if _, err := Elements(DomainUniform, -1, rng); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Elements(Domain(99), 10, rng); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestDomainShapes(t *testing.T) {
	rng := hashing.NewRNG(2)
	seq, err := Elements(DomainSequential, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatal("sequential domain not consecutive")
		}
	}
	str, err := Elements(DomainStrided, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range str {
		if str[i]&0xfff != str[0]&0xfff {
			t.Fatal("strided domain low bits vary")
		}
	}
}

func TestSkewedOverlap(t *testing.T) {
	rng := hashing.NewRNG(3)
	for _, d := range Domains() {
		a, b, mult, err := SkewedOverlap(d, 2000, 500, rng)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		inA := make(map[uint64]bool, len(a))
		for _, e := range a {
			inA[e] = true
		}
		inter := 0
		union := make(map[uint64]bool)
		for _, e := range a {
			union[e] = true
		}
		for _, e := range b {
			union[e] = true
			if inA[e] {
				inter++
			}
		}
		if len(union) != 2000 || inter != 500 {
			t.Errorf("%v: union %d inter %d, want 2000, 500", d, len(union), inter)
		}
		if len(mult) != 2000 {
			t.Fatalf("%v: %d multiplicities", d, len(mult))
		}
		if mult[0] != 64 || mult[1999] < 1 {
			t.Errorf("%v: multiplicity shape off: head %d tail %d", d, mult[0], mult[1999])
		}
	}
	if _, _, _, err := SkewedOverlap(DomainUniform, 10, 20, rng); err == nil {
		t.Error("inter > u accepted")
	}
}

// TestZipfStream: the empirical frequency ranking follows the law —
// rank 0 strictly dominates, the head of the distribution carries most
// of the volume at theta = 1, and theta = 0 degenerates to uniform.
func TestZipfStream(t *testing.T) {
	rng := hashing.NewRNG(31)
	const support, n = 1000, 200000
	stream, err := ZipfStream(DomainUniform, support, n, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != n {
		t.Fatalf("stream length %d, want %d", len(stream), n)
	}
	freq := make(map[uint64]int)
	for _, e := range stream {
		freq[e]++
	}
	if len(freq) > support {
		t.Fatalf("%d distinct elements exceed support %d", len(freq), support)
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// At theta = 1 over 1000 ranks, rank 0 carries 1/H_1000 ≈ 13.4% of
	// the volume; allow generous slack.
	if max < n/12 {
		t.Errorf("hottest element has %d/%d draws; Zipf(1.0) head should carry ~13%%", max, n)
	}

	// theta = 0: uniform — no element should come close to Zipf's head.
	flat, err := ZipfStream(DomainUniform, support, n, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	freq = make(map[uint64]int)
	for _, e := range flat {
		freq[e]++
	}
	for _, c := range freq {
		if c > n/100 {
			t.Errorf("uniform draw has an element with %d/%d hits", c, n)
		}
	}

	if _, err := ZipfStream(DomainUniform, 0, 1, 1, rng); err == nil {
		t.Error("support 0 accepted")
	}
	if _, err := ZipfStream(DomainUniform, 10, 1, -1, rng); err == nil {
		t.Error("negative skew accepted")
	}
}
