package setsketch

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"setsketch/internal/hashing"
)

// testOptions keeps public-API tests fast.
func testOptions() Options {
	return Options{Copies: 256, SecondLevel: 16, FirstWise: 8, Seed: 7}
}

func newProcessor(t testing.TB, opts Options) *Processor {
	t.Helper()
	p, err := NewProcessor(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// loadOverlap feeds streams A and B with union u and intersection inter.
func loadOverlap(t testing.TB, p *Processor, seed uint64, u, inter int) {
	t.Helper()
	rng := hashing.NewRNG(seed)
	seen := make(map[uint64]bool, u)
	count := 0
	for count < u {
		e := rng.Uint64n(1 << 32)
		if seen[e] {
			continue
		}
		seen[e] = true
		switch {
		case count < inter:
			mustUpdate(t, p, "A", e, 1)
			mustUpdate(t, p, "B", e, 1)
		case count%2 == 0:
			mustUpdate(t, p, "A", e, 1)
		default:
			mustUpdate(t, p, "B", e, 1)
		}
		count++
	}
}

func mustUpdate(t testing.TB, p *Processor, stream string, e uint64, d int64) {
	t.Helper()
	if err := p.Update(stream, e, d); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorEndToEnd(t *testing.T) {
	// 512 copies: at the witness level only ≈ 11% of copies yield a
	// valid observation, so smaller r makes this statistical check flaky.
	opts := testOptions()
	opts.Copies = 512
	p := newProcessor(t, opts)
	const u, inter = 4096, 1024
	loadOverlap(t, p, 1, u, inter)

	if got := p.Streams(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Streams = %v", got)
	}

	union, err := p.EstimateUnion([]string{"A", "B"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(union.Value-u) / u; rel > 0.25 {
		t.Errorf("union %.0f, want ≈ %d", union.Value, u)
	}

	intersection, err := p.Estimate("A & B", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(intersection.Value-inter) / inter; rel > 0.5 {
		t.Errorf("intersection %.0f, want ≈ %d", intersection.Value, inter)
	}
	if intersection.Copies != 512 || intersection.Valid == 0 || intersection.Union == 0 {
		t.Errorf("diagnostics: %+v", intersection)
	}

	diff, err := p.Estimate("A - B", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	want := (u - inter) / 2
	if rel := math.Abs(diff.Value-float64(want)) / float64(want); rel > 0.5 {
		t.Errorf("difference %.0f, want ≈ %d", diff.Value, want)
	}
}

func TestProcessorDeletions(t *testing.T) {
	p := newProcessor(t, testOptions())
	q := newProcessor(t, testOptions()) // same coins, no churn
	rng := hashing.NewRNG(2)
	for i := 0; i < 2000; i++ {
		e := rng.Uint64n(1 << 28)
		mustUpdate(t, p, "A", e, 1)
		mustUpdate(t, q, "A", e, 1)
		// Churn p only: insert and fully delete a phantom.
		ph := (1 << 40) + rng.Uint64n(1<<20)
		mustUpdate(t, p, "A", ph, 2)
		mustUpdate(t, p, "A", ph, -2)
	}
	ep, err := p.EstimateDistinct("A", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := q.EstimateDistinct("A", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Value != eq.Value {
		t.Errorf("deletion churn changed the estimate: %v vs %v", ep.Value, eq.Value)
	}
}

func TestProcessorZeroDeltaIsNoop(t *testing.T) {
	p := newProcessor(t, testOptions())
	if err := p.Update("A", 1, 0); err != nil {
		t.Fatal(err)
	}
	if len(p.Streams()) != 0 {
		t.Error("zero-delta update created a stream")
	}
}

func TestProcessorOptionValidation(t *testing.T) {
	cases := []Options{
		{Copies: 0, SecondLevel: 16, FirstWise: 8, Seed: 1},
		{Copies: 8, SecondLevel: 0, FirstWise: 8, Seed: 1},
		{Copies: 8, SecondLevel: 16, FirstWise: 1, Seed: 1},
	}
	for _, opts := range cases {
		if _, err := NewProcessor(opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
	// Zero value falls back to defaults.
	p, err := NewProcessor(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Options() != DefaultOptions() {
		t.Errorf("zero options resolved to %+v", p.Options())
	}
}

func TestProcessorEstimateErrors(t *testing.T) {
	p := newProcessor(t, testOptions())
	mustUpdate(t, p, "A", 1, 1)
	if _, err := p.Estimate("A &", 0.1); err == nil {
		t.Error("malformed expression accepted")
	}
	if _, err := p.Estimate("A & B", 0.1); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := p.Estimate("A", 0); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := p.EstimateUnion([]string{"NOPE"}, 0.1); err == nil {
		t.Error("unknown stream in union accepted")
	}
	if err := Validate("A & (B - C)"); err != nil {
		t.Errorf("Validate rejected a valid expression: %v", err)
	}
	if err := Validate("A ("); err == nil {
		t.Error("Validate accepted garbage")
	}
}

func TestSnapshotRestoreDistributed(t *testing.T) {
	// Two "sites" summarize halves of stream A; a coordinator restores
	// both snapshots and must behave exactly like a single observer.
	opts := testOptions()
	site1 := newProcessor(t, opts)
	site2 := newProcessor(t, opts)
	whole := newProcessor(t, opts)
	rng := hashing.NewRNG(3)
	for i := 0; i < 3000; i++ {
		e := rng.Uint64n(1 << 26)
		mustUpdate(t, whole, "A", e, 1)
		if i%2 == 0 {
			mustUpdate(t, site1, "A", e, 1)
		} else {
			mustUpdate(t, site2, "A", e, 1)
		}
	}
	coord := newProcessor(t, opts)
	for _, site := range []*Processor{site1, site2} {
		var buf bytes.Buffer
		if err := site.Snapshot("A", &buf); err != nil {
			t.Fatal(err)
		}
		if err := coord.Restore("A", &buf); err != nil {
			t.Fatal(err)
		}
	}
	ec, err := coord.EstimateDistinct("A", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := whole.EstimateDistinct("A", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Value != ew.Value {
		t.Errorf("distributed estimate %v differs from centralized %v", ec.Value, ew.Value)
	}
}

func TestSnapshotErrors(t *testing.T) {
	p := newProcessor(t, testOptions())
	var buf bytes.Buffer
	if err := p.Snapshot("missing", &buf); err == nil {
		t.Error("snapshot of unknown stream succeeded")
	}
	if err := p.Restore("A", bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("restore of garbage succeeded")
	}
	// Restore with mismatched coins must fail.
	other := newProcessor(t, Options{Copies: 256, SecondLevel: 16, FirstWise: 8, Seed: 999})
	mustUpdate(t, other, "A", 1, 1)
	if err := other.Snapshot("A", &buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Restore("A", &buf); err == nil {
		t.Error("restore with different seed succeeded")
	}
}

func TestMergeFrom(t *testing.T) {
	opts := testOptions()
	a := newProcessor(t, opts)
	b := newProcessor(t, opts)
	whole := newProcessor(t, opts)
	rng := hashing.NewRNG(4)
	for i := 0; i < 1000; i++ {
		e := rng.Uint64n(1 << 24)
		stream := "X"
		if i%3 == 0 {
			stream = "Y"
		}
		mustUpdate(t, whole, stream, e, 1)
		if i%2 == 0 {
			mustUpdate(t, a, stream, e, 1)
		} else {
			mustUpdate(t, b, stream, e, 1)
		}
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	for _, exprStr := range []string{"X", "Y", "X & Y", "X - Y"} {
		ea, err1 := a.Estimate(exprStr, 0.2)
		ew, err2 := whole.Estimate(exprStr, 0.2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", exprStr, err1, err2)
		}
		if err1 == nil && ea.Value != ew.Value {
			t.Errorf("%s: merged %v vs centralized %v", exprStr, ea.Value, ew.Value)
		}
	}
	diff := newProcessor(t, Options{Copies: 256, SecondLevel: 16, FirstWise: 8, Seed: 99})
	if err := a.MergeFrom(diff); err == nil {
		t.Error("MergeFrom with different options succeeded")
	}
}

func TestProcessorConcurrentUpdates(t *testing.T) {
	p := newProcessor(t, Options{Copies: 32, SecondLevel: 8, FirstWise: 4, Seed: 5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hashing.NewRNG(uint64(g))
			stream := []string{"A", "B", "C"}[g%3]
			for i := 0; i < 500; i++ {
				if err := p.Insert(stream, rng.Uint64n(1<<20)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(p.Streams()) != 3 {
		t.Errorf("streams = %v", p.Streams())
	}
	if _, err := p.Estimate("(A | B) & C", 0.3); err != nil && !errors.Is(err, ErrNoObservations) {
		t.Errorf("estimate after concurrent updates: %v", err)
	}
	if p.MemoryBytes() == 0 {
		t.Error("MemoryBytes = 0")
	}
}

func TestAnalyzeAndEquivalent(t *testing.T) {
	a, err := Analyze("R1 & R2 - R3 | R4")
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical != "(((R1 & R2) - R3) | R4)" {
		t.Errorf("Canonical = %q", a.Canonical)
	}
	if len(a.Streams) != 4 || a.Streams[0] != "R1" {
		t.Errorf("Streams = %v", a.Streams)
	}
	if a.Empty || a.Universe {
		t.Errorf("degenerate flags wrong: %+v", a)
	}

	if a, _ := Analyze("A - A"); !a.Empty {
		t.Error("A - A not flagged empty")
	}
	if a, _ := Analyze("A | (B - A)"); !a.Universe {
		t.Error("A | (B - A) not flagged as universe")
	}
	if _, err := Analyze("A &"); err == nil {
		t.Error("Analyze accepted garbage")
	}

	eq, err := Equivalent("A ^ B", "(A - B) | (B - A)")
	if err != nil || !eq {
		t.Errorf("xor equivalence: %v, %v", eq, err)
	}
	eq, err = Equivalent("A - B", "B - A")
	if err != nil || eq {
		t.Errorf("A-B vs B-A: %v, %v", eq, err)
	}
	if _, err := Equivalent("A", "B |"); err == nil {
		t.Error("Equivalent accepted garbage")
	}
}

func TestEstimateSymmetricDifference(t *testing.T) {
	opts := testOptions()
	opts.Copies = 384
	p := newProcessor(t, opts)
	const u, inter = 2048, 1024
	loadOverlap(t, p, 9, u, inter)
	// |A ^ B| = u − inter.
	est, err := p.Estimate("A ^ B", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(u - inter)
	if rel := math.Abs(est.Value-want) / want; rel > 0.4 {
		t.Errorf("|A ^ B| = %.0f, want ≈ %.0f", est.Value, want)
	}
}

func TestEstimateSingleLevelVariant(t *testing.T) {
	opts := testOptions()
	opts.Copies = 512
	p := newProcessor(t, opts)
	loadOverlap(t, p, 10, 2048, 512)
	est, err := p.EstimateSingleLevel("A & B", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value <= 0 {
		t.Errorf("single-level estimate %v", est.Value)
	}
	if _, err := p.EstimateSingleLevel("A &", 0.2); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDropAndResetStream(t *testing.T) {
	p := newProcessor(t, Options{Copies: 16, SecondLevel: 8, FirstWise: 4, Seed: 1})
	mustUpdate(t, p, "A", 1, 1)
	mustUpdate(t, p, "B", 2, 1)
	if !p.DropStream("A") {
		t.Error("DropStream(A) = false for existing stream")
	}
	if p.DropStream("A") {
		t.Error("DropStream(A) = true after drop")
	}
	if got := p.Streams(); len(got) != 1 || got[0] != "B" {
		t.Errorf("Streams after drop = %v", got)
	}
	if !p.ResetStream("B") {
		t.Error("ResetStream(B) = false")
	}
	if p.ResetStream("missing") {
		t.Error("ResetStream of unknown stream = true")
	}
	// After reset the stream estimates as empty but is still mergeable
	// with snapshots from the same coins.
	est, err := p.EstimateDistinct("B", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("reset stream estimates %v, want 0", est.Value)
	}
}

// TestConcurrentEstimateAndUpdate exercises the locking protocol:
// estimation (exclusive) racing with updates (shared + per-stream) and
// continuous-query callbacks must be race-free (run with -race).
func TestConcurrentEstimateAndUpdate(t *testing.T) {
	p := newProcessor(t, Options{Copies: 32, SecondLevel: 8, FirstWise: 4, Seed: 6})
	if _, err := p.RegisterContinuous("A & B", 0.3, 200, func(Estimate, error) {}); err != nil {
		t.Fatal(err)
	}
	// Seed both streams so readers always have something to estimate.
	mustUpdate(t, p, "A", 1, 1)
	mustUpdate(t, p, "B", 2, 1)

	var updaters, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		updaters.Add(1)
		go func(g int) {
			defer updaters.Done()
			rng := hashing.NewRNG(uint64(g) + 50)
			stream := []string{"A", "B"}[g%2]
			for i := 0; i < 2000; i++ {
				if err := p.Insert(stream, rng.Uint64n(1<<16)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.Estimate("A | B", 0.3); err != nil && !errors.Is(err, ErrNoObservations) {
				t.Errorf("estimate during updates: %v", err)
				return
			}
			var buf bytes.Buffer
			if err := p.Snapshot("A", &buf); err != nil {
				t.Errorf("snapshot during updates: %v", err)
				return
			}
		}
	}()
	updaters.Wait()
	close(stop)
	readers.Wait()
}

func TestRecommendedCopies(t *testing.T) {
	if RecommendedCopies(0.1, 0.05) <= 0 {
		t.Error("RecommendedCopies returned nothing")
	}
}
