package setsketch

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/expr"
)

// InsertOnlyProcessor is the bit-cell variant of Processor for
// insert-only workloads — the representation the paper's own
// experiments use (§5.2: "simple bits instead of counters"). Each
// sketch cell is one bit instead of an 8-byte counter, a 64× memory
// reduction, and estimates are identical to what a Processor computes
// over the same stream and seed. The trade-off is fundamental, not an
// implementation detail: bits saturate, so deletions are impossible —
// use Processor for general update streams.
//
// This mode fits the paper's query-optimization motivation (§1):
// estimating UNION / INTERSECT / EXCEPT result cardinalities over
// large stored tables, where data is scanned once and never deleted
// mid-scan.
type InsertOnlyProcessor struct {
	opts Options
	cfg  core.Config

	mu   sync.RWMutex
	fams map[string]*core.BitFamily
}

// ErrInsertOnly is returned when a deletion is applied to an
// InsertOnlyProcessor.
var ErrInsertOnly = errors.New("setsketch: insert-only processor cannot apply deletions; use Processor")

// NewInsertOnlyProcessor creates an insert-only processor. A zero
// Options value selects DefaultOptions.
func NewInsertOnlyProcessor(opts Options) (*InsertOnlyProcessor, error) {
	if opts.Copies == 0 && opts.SecondLevel == 0 && opts.FirstWise == 0 && opts.Seed == 0 {
		opts = DefaultOptions()
	}
	cfg := core.Config{
		Buckets:     core.DefaultConfig().Buckets,
		SecondLevel: opts.SecondLevel,
		FirstWise:   opts.FirstWise,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Copies < 1 {
		return nil, fmt.Errorf("setsketch: Copies = %d, need at least 1", opts.Copies)
	}
	return &InsertOnlyProcessor{opts: opts, cfg: cfg, fams: make(map[string]*core.BitFamily)}, nil
}

// Options returns the processor's configuration.
func (p *InsertOnlyProcessor) Options() Options { return p.opts }

// family returns (creating if needed) the synopsis for a stream.
// Callers must hold no lock.
func (p *InsertOnlyProcessor) family(stream string) (*core.BitFamily, error) {
	p.mu.RLock()
	f, ok := p.fams[stream]
	p.mu.RUnlock()
	if ok {
		return f, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok = p.fams[stream]; ok {
		return f, nil
	}
	f, err := core.NewBitFamily(p.cfg, p.opts.Seed, p.opts.Copies)
	if err != nil {
		return nil, err
	}
	p.fams[stream] = f
	return f, nil
}

// Insert records one occurrence of elem in the stream. Multiplicities
// are irrelevant for distinct counting, so repeated inserts are
// harmless (and cheap — bits saturate).
//
// Inserts to the same stream must be externally serialized (bit writes
// are not atomic); inserts to different streams, and inserts concurrent
// with estimation, are safe.
func (p *InsertOnlyProcessor) Insert(stream string, elem uint64) error {
	f, err := p.family(stream)
	if err != nil {
		return err
	}
	p.mu.RLock()
	f.Insert(elem)
	p.mu.RUnlock()
	return nil
}

// Update accepts only positive deltas; negative deltas return
// ErrInsertOnly.
func (p *InsertOnlyProcessor) Update(stream string, elem uint64, delta int64) error {
	if delta < 0 {
		return ErrInsertOnly
	}
	if delta == 0 {
		return nil
	}
	return p.Insert(stream, elem)
}

// Delete always fails with ErrInsertOnly.
func (p *InsertOnlyProcessor) Delete(string, uint64) error { return ErrInsertOnly }

// Streams returns the names of all streams seen so far, sorted.
func (p *InsertOnlyProcessor) Streams() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.fams))
	for name := range p.fams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Estimate estimates |E| for a set expression; see Processor.Estimate
// for the grammar and semantics.
func (p *InsertOnlyProcessor) Estimate(expression string, eps float64) (Estimate, error) {
	node, err := expr.Parse(expression)
	if err != nil {
		return Estimate{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	est, err := core.EstimateExpressionMultiLevelBits(node, p.fams, eps)
	return fromCore(est), err
}

// EstimateUnion estimates |∪ streams| with the specialized Fig. 5
// estimator.
func (p *InsertOnlyProcessor) EstimateUnion(streams []string, eps float64) (Estimate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fams := make([]*core.BitFamily, 0, len(streams))
	for _, name := range streams {
		f, ok := p.fams[name]
		if !ok {
			return Estimate{}, fmt.Errorf("setsketch: unknown stream %q", name)
		}
		fams = append(fams, f)
	}
	est, err := core.EstimateUnionBits(fams, eps)
	return fromCore(est), err
}

// EstimateDistinct estimates the number of distinct elements of one
// stream.
func (p *InsertOnlyProcessor) EstimateDistinct(stream string, eps float64) (Estimate, error) {
	return p.EstimateUnion([]string{stream}, eps)
}

// Snapshot serializes the synopsis of one stream.
func (p *InsertOnlyProcessor) Snapshot(stream string, w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.fams[stream]
	if !ok {
		return fmt.Errorf("setsketch: unknown stream %q", stream)
	}
	_, err := f.WriteTo(w)
	return err
}

// Restore merges a snapshot into the named stream (bitwise OR — the
// synopsis of the union of the two insert streams).
func (p *InsertOnlyProcessor) Restore(stream string, r io.Reader) error {
	in, err := core.ReadBitFamily(r)
	if err != nil {
		return err
	}
	f, err := p.family(stream)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return f.Merge(in)
}

// MemoryBytes reports the total synopsis footprint across all streams.
func (p *InsertOnlyProcessor) MemoryBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var n int
	for _, f := range p.fams {
		n += f.MemoryBytes()
	}
	return n
}
