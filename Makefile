GO ?= go

.PHONY: check lint vet build test race race-ingest bench bench-ingest bench-update bench-wal bench-e2e bench-compare

check:
	./scripts/check.sh

# Static analysis only: stock go vet plus sketchvet, the project's own
# analyzer suite (lock annotations, WAL append-before-apply, bit-exact
# hygiene, docs coverage). Also part of `make check`.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sketchvet ./...

# Focused race pass over the concurrent ingest/distributed paths (also
# part of `make check`).
race-ingest:
	$(GO) test -race -count=2 ./internal/ingest ./internal/distributed

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-ingest:
	$(GO) test -run xxx -bench BenchmarkIngest -benchtime 1s .

bench-update:
	$(GO) test -run xxx -bench '^(BenchmarkUpdate|BenchmarkUpdateDigest|BenchmarkUpdateDigestCompute|BenchmarkUpdateDigestComputeBatch|BenchmarkMergeFlat)$$' -benchtime 1s .

# WAL append throughput per fsync policy and recovery time vs WAL
# length (full numbers land in BENCH_wal.json via `make bench`).
bench-wal:
	$(GO) test -run xxx -bench '^(BenchmarkWALAppend|BenchmarkRecovery)$$' -benchtime 1s .

# End-to-end proof: sketchbench sessions over TCP into a live sketchd,
# swept across -sessions and server GOMAXPROCS (writes BENCH_e2e.json).
bench-e2e:
	./scripts/bench.sh e2e

# Diff two BENCH_*.json files and fail on >10% ns/op regressions:
#   make bench-compare OLD=old/BENCH_update.json NEW=BENCH_update.json
bench-compare:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# bench regenerates the BENCH_*.json files from fresh benchmark runs on
# this host (see scripts/bench.sh).
bench:
	./scripts/bench.sh
