GO ?= go

.PHONY: check vet build test race race-ingest bench bench-ingest bench-update

check:
	./scripts/check.sh

# Focused race pass over the concurrent ingest/distributed paths (also
# part of `make check`).
race-ingest:
	$(GO) test -race -count=2 ./internal/ingest ./internal/distributed

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-ingest:
	$(GO) test -run xxx -bench BenchmarkIngest -benchtime 1s .

bench-update:
	$(GO) test -run xxx -bench '^(BenchmarkUpdate|BenchmarkUpdateDigest|BenchmarkUpdateDigestCompute|BenchmarkMergeFlat)$$' -benchtime 1s .

# bench regenerates BENCH_ingest.json and BENCH_update.json from fresh
# benchmark runs on this host (see scripts/bench.sh).
bench:
	./scripts/bench.sh
