GO ?= go

.PHONY: check vet build test race bench bench-ingest

check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-ingest:
	$(GO) test -run xxx -bench BenchmarkIngest -benchtime 1s .

# bench regenerates BENCH_ingest.json from a fresh benchmark run on
# this host (see scripts/bench.sh).
bench:
	./scripts/bench.sh
