package setsketch

import (
	"bytes"
	"errors"
	"testing"

	"setsketch/internal/hashing"
)

func newInsertOnly(t testing.TB, opts Options) *InsertOnlyProcessor {
	t.Helper()
	p, err := NewInsertOnlyProcessor(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInsertOnlyMatchesCounterProcessor: on the same insert stream and
// options, estimates from the two processors are identical, at 1/64
// the memory.
func TestInsertOnlyMatchesCounterProcessor(t *testing.T) {
	opts := testOptions()
	counter := newProcessor(t, opts)
	bits := newInsertOnly(t, opts)
	rng := hashing.NewRNG(12)
	for i := 0; i < 3000; i++ {
		e := rng.Uint64n(1 << 28)
		stream := "A"
		if i%3 != 0 {
			stream = "B"
		}
		mustUpdate(t, counter, stream, e, 1)
		if err := bits.Insert(stream, e); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{"A | B", "A & B", "A - B", "A ^ B"} {
		ce, cerr := counter.Estimate(q, 0.2)
		be, berr := bits.Estimate(q, 0.2)
		if (cerr == nil) != (berr == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", q, cerr, berr)
		}
		if cerr == nil && ce.Value != be.Value {
			t.Errorf("%s: counter %.2f vs bits %.2f", q, ce.Value, be.Value)
		}
	}
	cu, err := counter.EstimateUnion([]string{"A", "B"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := bits.EstimateUnion([]string{"A", "B"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cu.Value != bu.Value {
		t.Errorf("union: counter %.2f vs bits %.2f", cu.Value, bu.Value)
	}
	if ratio := float64(counter.MemoryBytes()) / float64(bits.MemoryBytes()); ratio < 55 {
		t.Errorf("memory ratio %.1f, want ≈ 64", ratio)
	}
}

func TestInsertOnlyRejectsDeletions(t *testing.T) {
	p := newInsertOnly(t, Options{Copies: 8, SecondLevel: 8, FirstWise: 4, Seed: 1})
	if err := p.Insert("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("A", 1); !errors.Is(err, ErrInsertOnly) {
		t.Errorf("Delete err = %v, want ErrInsertOnly", err)
	}
	if err := p.Update("A", 1, -1); !errors.Is(err, ErrInsertOnly) {
		t.Errorf("negative Update err = %v, want ErrInsertOnly", err)
	}
	if err := p.Update("A", 1, 0); err != nil {
		t.Errorf("zero Update err = %v", err)
	}
	if err := p.Update("A", 2, 5); err != nil {
		t.Errorf("positive Update err = %v", err)
	}
	if got := p.Streams(); len(got) != 1 || got[0] != "A" {
		t.Errorf("Streams = %v", got)
	}
}

func TestInsertOnlySnapshotRestore(t *testing.T) {
	opts := Options{Copies: 64, SecondLevel: 8, FirstWise: 4, Seed: 9}
	site1 := newInsertOnly(t, opts)
	site2 := newInsertOnly(t, opts)
	whole := newInsertOnly(t, opts)
	rng := hashing.NewRNG(13)
	for i := 0; i < 2000; i++ {
		e := rng.Uint64n(1 << 24)
		if err := whole.Insert("S", e); err != nil {
			t.Fatal(err)
		}
		site := site1
		if i%2 == 0 {
			site = site2
		}
		if err := site.Insert("S", e); err != nil {
			t.Fatal(err)
		}
	}
	coord := newInsertOnly(t, opts)
	for _, site := range []*InsertOnlyProcessor{site1, site2} {
		var buf bytes.Buffer
		if err := site.Snapshot("S", &buf); err != nil {
			t.Fatal(err)
		}
		if err := coord.Restore("S", &buf); err != nil {
			t.Fatal(err)
		}
	}
	ec, err := coord.EstimateDistinct("S", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := whole.EstimateDistinct("S", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Value != ew.Value {
		t.Errorf("distributed %v vs centralized %v", ec.Value, ew.Value)
	}
	if err := coord.Snapshot("missing", &bytes.Buffer{}); err == nil {
		t.Error("snapshot of unknown stream succeeded")
	}
	if err := coord.Restore("S", bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("restore of junk succeeded")
	}
}

func TestInsertOnlyOptionValidation(t *testing.T) {
	if _, err := NewInsertOnlyProcessor(Options{Copies: 0, SecondLevel: 8, FirstWise: 4, Seed: 1}); err == nil {
		t.Error("zero copies accepted")
	}
	if _, err := NewInsertOnlyProcessor(Options{Copies: 8, SecondLevel: 0, FirstWise: 4, Seed: 1}); err == nil {
		t.Error("zero second level accepted")
	}
	p, err := NewInsertOnlyProcessor(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Options() != DefaultOptions() {
		t.Error("zero options did not default")
	}
	if _, err := p.Estimate("A &", 0.1); err == nil {
		t.Error("garbage expression accepted")
	}
	if _, err := p.EstimateUnion([]string{"missing"}, 0.1); err == nil {
		t.Error("unknown stream accepted")
	}
}
