module setsketch

go 1.22
