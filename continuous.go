package setsketch

import (
	"fmt"
	"sync"

	"setsketch/internal/core"
	"setsketch/internal/expr"
)

// Continuous queries: the paper's architecture (Fig. 1) positions the
// stream processor as an *online* query answerer. A registered
// continuous query re-estimates its set expression after every
// `every`-th update that touches one of its streams and delivers the
// result to its callback — the push-based counterpart of calling
// Estimate by hand.

// ContinuousID identifies a registered continuous query.
type ContinuousID int

// continuousQuery is the registration record. The expression is
// compiled once here; every firing reuses the compiled query (q is nil
// only for expressions over more than 64 streams, which fall back to
// the interpreted estimator).
type continuousQuery struct {
	node    expr.Node
	q       *core.Query
	streams map[string]struct{}
	eps     float64
	every   int64
	pending int64
	fn      func(Estimate, error)
}

// continuousState is lazily attached to a Processor.
type continuousState struct {
	mu      sync.Mutex
	nextID  ContinuousID
	queries map[ContinuousID]*continuousQuery
}

// RegisterContinuous registers a continuous query: after every `every`
// updates touching any stream the expression references, the
// expression is re-estimated with accuracy parameter eps and the
// result (or estimation error, e.g. ErrNoObservations early in the
// stream) is passed to fn.
//
// fn runs synchronously on the updating goroutine that crossed the
// threshold, so it must be fast and must not call back into the
// Processor's update path; hand results to a channel for heavy work.
func (p *Processor) RegisterContinuous(expression string, eps float64, every int, fn func(Estimate, error)) (ContinuousID, error) {
	if every < 1 {
		return 0, fmt.Errorf("setsketch: continuous query interval %d, need ≥ 1", every)
	}
	if fn == nil {
		return 0, fmt.Errorf("setsketch: continuous query needs a callback")
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("setsketch: relative accuracy ε = %v out of (0, 1)", eps)
	}
	node, err := expr.Parse(expression)
	if err != nil {
		return 0, err
	}
	streams := make(map[string]struct{})
	for _, name := range expr.Streams(node) {
		streams[name] = struct{}{}
	}
	cs := p.continuous()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	q, err := core.CompileQuery(node)
	if err != nil {
		q = nil // > 64 streams: interpreted fallback per firing
	}
	cs.nextID++
	id := cs.nextID
	cs.queries[id] = &continuousQuery{
		node: node, q: q, streams: streams, eps: eps, every: int64(every), fn: fn,
	}
	return id, nil
}

// UnregisterContinuous removes a continuous query; it reports whether
// the id was registered.
func (p *Processor) UnregisterContinuous(id ContinuousID) bool {
	cs := p.continuous()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, ok := cs.queries[id]
	delete(cs.queries, id)
	return ok
}

// ContinuousQueries returns the number of registered continuous
// queries.
func (p *Processor) ContinuousQueries() int {
	cs := p.continuous()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.queries)
}

// continuous returns the lazily-created continuous-query state.
func (p *Processor) continuous() *continuousState {
	p.contOnce.Do(func() {
		p.cont = &continuousState{queries: make(map[ContinuousID]*continuousQuery)}
	})
	return p.cont
}

// notifyContinuous advances the counters of queries referencing the
// updated stream and fires those whose interval elapsed. Called from
// Update after the synopsis write completes.
func (p *Processor) notifyContinuous(stream string) {
	// continuous() uses sync.Once, so this read is race-free even
	// against a concurrent first registration.
	cs := p.continuous()
	var due []*continuousQuery
	cs.mu.Lock()
	for _, q := range cs.queries {
		if _, ok := q.streams[stream]; !ok {
			continue
		}
		q.pending++
		if q.pending >= q.every {
			q.pending = 0
			due = append(due, q)
		}
	}
	cs.mu.Unlock()
	for _, q := range due {
		// Exclusive lock, like Estimate: a consistent read of every
		// counter even while other goroutines keep updating.
		p.mu.Lock()
		var est core.Estimate
		var err error
		if q.q != nil {
			est, err = q.q.Estimate(p.fams, q.eps, true, p.estOpts)
		} else {
			est, err = core.EstimateExpressionOpts(q.node, p.fams, q.eps, true, p.estOpts)
		}
		p.mu.Unlock()
		q.fn(fromCore(est), err)
	}
}
